(** Parser for the WebAssembly text format.

    Supports the common subset used by hand-written tests and by this
    project's own printer: modules with type/import/func/memory/table/
    global/export/start/elem/data fields, numeric indices and [$name]
    identifiers for functions, locals and globals, linear instruction
    sequences, and folded s-expression instructions including
    [(if (then ...) (else ...))]. *)

open Types
open Ast

exception Parse_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- s-expressions ----------------------------------------------------- *)

type sexp =
  | Atom of string
  | Str of string  (** quoted string, unescaped *)
  | List of sexp list

let is_atom_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9'
  | '_' | '.' | '$' | '-' | '+' | '=' | '/' | '*' | '%' | '<' | '>' | '!' | '#' | ':' | '~' | '^' | '|' | '&' | '?' | '\'' -> true
  | _ -> false

let tokenize (src : string) : sexp list =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' when !pos + 1 < n && src.[!pos + 1] = ';' ->
      while !pos < n && src.[!pos] <> '\n' do advance () done;
      skip_ws ()
    | Some '(' when !pos + 1 < n && src.[!pos + 1] = ';' ->
      (* block comment, may nest *)
      let depth = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        if !pos + 1 >= n then error "unterminated block comment";
        if src.[!pos] = '(' && src.[!pos + 1] = ';' then begin
          incr depth;
          pos := !pos + 2
        end
        else if src.[!pos] = ';' && src.[!pos + 1] = ')' then begin
          decr depth;
          pos := !pos + 2;
          if !depth = 0 then continue_ := false
        end
        else advance ()
      done;
      skip_ws ()
    | _ -> ()
  in
  let read_string () =
    advance ();  (* opening quote *)
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match src.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then error "unterminated escape";
        let c = src.[!pos] in
        advance ();
        (match c with
         | 'n' -> Buffer.add_char buf '\n'; go ()
         | 't' -> Buffer.add_char buf '\t'; go ()
         | 'r' -> Buffer.add_char buf '\r'; go ()
         | '"' -> Buffer.add_char buf '"'; go ()
         | '\\' -> Buffer.add_char buf '\\'; go ()
         | c1 when (c1 >= '0' && c1 <= '9') || (c1 >= 'a' && c1 <= 'f') || (c1 >= 'A' && c1 <= 'F') ->
           if !pos >= n then error "unterminated hex escape";
           let c2 = src.[!pos] in
           advance ();
           let hex c =
             match c with
             | '0' .. '9' -> Char.code c - Char.code '0'
             | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
             | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
             | _ -> error "bad hex escape"
           in
           Buffer.add_char buf (Char.chr ((hex c1 * 16) + hex c2));
           go ()
         | _ -> error "unknown escape \\%c" c)
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec read_sexp () : sexp =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec go () =
        skip_ws ();
        match peek () with
        | Some ')' ->
          advance ();
          List (List.rev !items)
        | None -> error "unclosed parenthesis"
        | _ ->
          items := read_sexp () :: !items;
          go ()
      in
      go ()
    | Some '"' -> Str (read_string ())
    | Some c when is_atom_char c ->
      let start = !pos in
      while (match peek () with Some c when is_atom_char c -> true | _ -> false) do
        advance ()
      done;
      Atom (String.sub src start (!pos - start))
    | Some c -> error "unexpected character %C" c
  in
  let out = ref [] in
  skip_ws ();
  while !pos < n do
    out := read_sexp () :: !out;
    skip_ws ()
  done;
  List.rev !out

(* --- name environments -------------------------------------------------- *)

type env = {
  mutable func_names : (string * int) list;
  mutable global_names : (string * int) list;
  mutable type_names : (string * int) list;
}

let resolve names atom what =
  if String.length atom > 0 && atom.[0] = '$' then
    match List.assoc_opt atom names with
    | Some i -> i
    | None -> error "unknown %s %s" what atom
  else
    match int_of_string_opt atom with
    | Some i -> i
    | None -> error "expected %s index, got %S" what atom

(* --- types --------------------------------------------------------------- *)

let value_type_of_atom = function
  | "i32" -> I32T
  | "i64" -> I64T
  | "f32" -> F32T
  | "f64" -> F64T
  | a -> error "unknown value type %S" a

let parse_value_types items =
  List.map
    (function Atom a -> value_type_of_atom a | _ -> error "expected a value type")
    items

(** Split leading (param ...)/(result ...) clauses from a form body,
    ignoring $names on params. *)
let parse_func_sig fields =
  let params = ref [] and results = ref [] and rest = ref [] and names = ref [] in
  let n_params = ref 0 in
  List.iter
    (fun field ->
       match field with
       | List (Atom "param" :: Atom n :: tys) when String.length n > 0 && n.[0] = '$' ->
         (match tys with
          | [ Atom ty ] ->
            names := (n, !n_params) :: !names;
            incr n_params;
            params := value_type_of_atom ty :: !params
          | _ -> error "named param takes exactly one type")
       | List (Atom "param" :: tys) ->
         let ts = parse_value_types tys in
         n_params := !n_params + List.length ts;
         params := List.rev_append ts !params
       | List (Atom "result" :: tys) -> results := List.rev_append (parse_value_types tys) !results
       | f -> rest := f :: !rest)
    fields;
  (List.rev !params, List.rev !results, List.rev !rest, List.rev !names)

(* --- instructions -------------------------------------------------------- *)

let parse_int32 a =
  match Int32.of_string_opt a with
  | Some x -> x
  | None ->
    (* large unsigned literals *)
    (match Int64.of_string_opt a with
     | Some x when Int64.compare x 0xFFFFFFFFL <= 0 && Int64.compare x 0L >= 0 -> Int64.to_int32 x
     | _ -> error "bad i32 literal %S" a)

let parse_int64 a =
  match Int64.of_string_opt a with
  | Some x -> x
  | None -> error "bad i64 literal %S" a

let parse_float a =
  match a with
  | "nan" -> Float.nan
  | "-nan" -> -.Float.nan
  | "inf" -> Float.infinity
  | "-inf" -> Float.neg_infinity
  | _ ->
    (match float_of_string_opt a with
     | Some f -> f
     | None -> error "bad float literal %S" a)

(** Leading memarg clauses like [offset=4] [align=2] (align in bytes);
    stops at the first atom that is not a memarg, so later instructions'
    clauses are untouched. *)
let parse_memarg ~default_align atoms =
  let offset = ref 0 and align = ref default_align in
  let rec go = function
    | Atom s :: rest when String.length s > 7 && String.sub s 0 7 = "offset=" ->
      offset := int_of_string (String.sub s 7 (String.length s - 7));
      go rest
    | Atom s :: rest when String.length s > 6 && String.sub s 0 6 = "align=" ->
      let bytes = int_of_string (String.sub s 6 (String.length s - 6)) in
      let rec log2 k acc = if k <= 1 then acc else log2 (k / 2) (acc + 1) in
      align := log2 bytes 0;
      go rest
    | rest -> rest
  in
  let rest = go atoms in
  (!offset, !align, rest)

let simple_instrs : (string * instr) list =
  let i32 = S32 and i64 = S64 and f32 = SF32 and f64 = SF64 in
  [ ("unreachable", Unreachable); ("nop", Nop); ("return", Return);
    ("drop", Drop); ("select", Select);
    ("memory.size", MemorySize); ("memory.grow", MemoryGrow);
    ("i32.eqz", Test (IEqz i32)); ("i64.eqz", Test (IEqz i64)) ]
  @ (let irel =
       [ ("eq", Eq); ("ne", Ne); ("lt_s", LtS); ("lt_u", LtU); ("gt_s", GtS);
         ("gt_u", GtU); ("le_s", LeS); ("le_u", LeU); ("ge_s", GeS); ("ge_u", GeU) ]
     in
     List.concat_map
       (fun (sz, name) -> List.map (fun (s, op) -> (name ^ "." ^ s, Compare (IRel (sz, op)))) irel)
       [ (i32, "i32"); (i64, "i64") ])
  @ (let frel = [ ("eq", FEq); ("ne", FNe); ("lt", FLt); ("gt", FGt); ("le", FLe); ("ge", FGe) ] in
     List.concat_map
       (fun (sz, name) -> List.map (fun (s, op) -> (name ^ "." ^ s, Compare (FRel (sz, op)))) frel)
       [ (f32, "f32"); (f64, "f64") ])
  @ [ ("i32.extend8_s", Unary (IUn (i32, Ext8S))); ("i32.extend16_s", Unary (IUn (i32, Ext16S)));
      ("i64.extend8_s", Unary (IUn (i64, Ext8S))); ("i64.extend16_s", Unary (IUn (i64, Ext16S)));
      ("i64.extend32_s", Unary (IUn (i64, Ext32S)));
      ("i32.trunc_sat_f32_s", Convert I32TruncSatF32S); ("i32.trunc_sat_f32_u", Convert I32TruncSatF32U);
      ("i32.trunc_sat_f64_s", Convert I32TruncSatF64S); ("i32.trunc_sat_f64_u", Convert I32TruncSatF64U);
      ("i64.trunc_sat_f32_s", Convert I64TruncSatF32S); ("i64.trunc_sat_f32_u", Convert I64TruncSatF32U);
      ("i64.trunc_sat_f64_s", Convert I64TruncSatF64S); ("i64.trunc_sat_f64_u", Convert I64TruncSatF64U) ]
  @ (let iun = [ ("clz", Clz); ("ctz", Ctz); ("popcnt", Popcnt) ] in
     List.concat_map
       (fun (sz, name) -> List.map (fun (s, op) -> (name ^ "." ^ s, Unary (IUn (sz, op)))) iun)
       [ (i32, "i32"); (i64, "i64") ])
  @ (let fun_ =
       [ ("abs", Abs); ("neg", Neg); ("sqrt", Sqrt); ("ceil", Ceil); ("floor", Floor);
         ("trunc", Trunc); ("nearest", Nearest) ]
     in
     List.concat_map
       (fun (sz, name) -> List.map (fun (s, op) -> (name ^ "." ^ s, Unary (FUn (sz, op)))) fun_)
       [ (f32, "f32"); (f64, "f64") ])
  @ (let ibin =
       [ ("add", Add); ("sub", Sub); ("mul", Mul); ("div_s", DivS); ("div_u", DivU);
         ("rem_s", RemS); ("rem_u", RemU); ("and", And); ("or", Or); ("xor", Xor);
         ("shl", Shl); ("shr_s", ShrS); ("shr_u", ShrU); ("rotl", Rotl); ("rotr", Rotr) ]
     in
     List.concat_map
       (fun (sz, name) -> List.map (fun (s, op) -> (name ^ "." ^ s, Binary (IBin (sz, op)))) ibin)
       [ (i32, "i32"); (i64, "i64") ])
  @ (let fbin =
       [ ("add", FAdd); ("sub", FSub); ("mul", FMul); ("div", FDiv); ("min", Min);
         ("max", Max); ("copysign", CopySign) ]
     in
     List.concat_map
       (fun (sz, name) -> List.map (fun (s, op) -> (name ^ "." ^ s, Binary (FBin (sz, op)))) fbin)
       [ (f32, "f32"); (f64, "f64") ])
  @ [ ("i32.wrap_i64", Convert I32WrapI64);
      ("i32.trunc_f32_s", Convert I32TruncF32S); ("i32.trunc_f32_u", Convert I32TruncF32U);
      ("i32.trunc_f64_s", Convert I32TruncF64S); ("i32.trunc_f64_u", Convert I32TruncF64U);
      ("i64.extend_i32_s", Convert I64ExtendI32S); ("i64.extend_i32_u", Convert I64ExtendI32U);
      ("i64.trunc_f32_s", Convert I64TruncF32S); ("i64.trunc_f32_u", Convert I64TruncF32U);
      ("i64.trunc_f64_s", Convert I64TruncF64S); ("i64.trunc_f64_u", Convert I64TruncF64U);
      ("f32.convert_i32_s", Convert F32ConvertI32S); ("f32.convert_i32_u", Convert F32ConvertI32U);
      ("f32.convert_i64_s", Convert F32ConvertI64S); ("f32.convert_i64_u", Convert F32ConvertI64U);
      ("f32.demote_f64", Convert F32DemoteF64);
      ("f64.convert_i32_s", Convert F64ConvertI32S); ("f64.convert_i32_u", Convert F64ConvertI32U);
      ("f64.convert_i64_s", Convert F64ConvertI64S); ("f64.convert_i64_u", Convert F64ConvertI64U);
      ("f64.promote_f32", Convert F64PromoteF32);
      ("i32.reinterpret_f32", Convert I32ReinterpretF32);
      ("i64.reinterpret_f64", Convert I64ReinterpretF64);
      ("f32.reinterpret_i32", Convert F32ReinterpretI32);
      ("f64.reinterpret_i64", Convert F64ReinterpretI64) ]

let load_store_instrs : (string * (int * instr)) list =
  (* name -> natural alignment (log2), op with align/offset patched later *)
  let l lty lpack = Load { lty; lalign = 0; loffset = 0; lpack } in
  let s sty spack = Store { sty; salign = 0; soffset = 0; spack } in
  [ ("i32.load", (2, l I32T None)); ("i64.load", (3, l I64T None));
    ("f32.load", (2, l F32T None)); ("f64.load", (3, l F64T None));
    ("i32.load8_s", (0, l I32T (Some (Pack8, SX)))); ("i32.load8_u", (0, l I32T (Some (Pack8, ZX))));
    ("i32.load16_s", (1, l I32T (Some (Pack16, SX)))); ("i32.load16_u", (1, l I32T (Some (Pack16, ZX))));
    ("i64.load8_s", (0, l I64T (Some (Pack8, SX)))); ("i64.load8_u", (0, l I64T (Some (Pack8, ZX))));
    ("i64.load16_s", (1, l I64T (Some (Pack16, SX)))); ("i64.load16_u", (1, l I64T (Some (Pack16, ZX))));
    ("i64.load32_s", (2, l I64T (Some (Pack32, SX)))); ("i64.load32_u", (2, l I64T (Some (Pack32, ZX))));
    ("i32.store", (2, s I32T None)); ("i64.store", (3, s I64T None));
    ("f32.store", (2, s F32T None)); ("f64.store", (3, s F64T None));
    ("i32.store8", (0, s I32T (Some Pack8))); ("i32.store16", (1, s I32T (Some Pack16)));
    ("i64.store8", (0, s I64T (Some Pack8))); ("i64.store16", (1, s I64T (Some Pack16)));
    ("i64.store32", (2, s I64T (Some Pack32))) ]

type ictx = {
  env : env;
  locals : (string * int) list;
  mutable labels : string option list;  (** innermost first *)
}

let resolve_label ctx atom =
  if String.length atom > 0 && atom.[0] = '$' then
    let rec find k = function
      | [] -> error "unknown label %s" atom
      | Some l :: _ when l = atom -> k
      | _ :: rest -> find (k + 1) rest
    in
    find 0 ctx.labels
  else
    match int_of_string_opt atom with
    | Some k -> k
    | None -> error "expected label, got %S" atom

let parse_block_type fields =
  match fields with
  | List (Atom "result" :: tys) :: rest ->
    (match parse_value_types tys with
     | [ t ] -> (Some t, rest)
     | [] -> (None, rest)
     | _ -> error "multi-result blocks not supported")
  | rest -> (None, rest)

let take_label fields =
  match fields with
  | Atom a :: rest when String.length a > 0 && a.[0] = '$' -> (Some a, rest)
  | rest -> (None, rest)

(** Parse a sequence of instructions (linear atoms mixed with folded
    forms). Appends to [acc] in reverse order. *)
let rec parse_instrs ctx (acc : instr list) (items : sexp list) : instr list =
  match items with
  | [] -> acc
  | Atom a :: rest -> parse_plain ctx acc a rest
  | List (Atom head :: inner) :: rest ->
    let acc = parse_folded ctx acc head inner in
    parse_instrs ctx acc rest
  | s :: _ ->
    error "unexpected form %s"
      (match s with Str _ -> "<string>" | List _ -> "()" | Atom a -> a)

(** A plain (linear) instruction whose immediates follow as atoms. *)
and parse_plain ctx acc a (rest : sexp list) : instr list =
  let take1 rest what =
    match rest with
    | Atom x :: rest' -> (x, rest')
    | _ -> error "%s expects an immediate" what
  in
  match a with
  | "block" | "loop" | "if" ->
    let label, rest = (match rest with
      | Atom l :: r when String.length l > 0 && l.[0] = '$' -> (Some l, r)
      | r -> (None, r))
    in
    let bt, rest =
      match rest with
      | List (Atom "result" :: tys) :: r ->
        (match parse_value_types tys with
         | [ t ] -> (Some t, r)
         | _ -> error "bad block result")
      | r -> (None, r)
    in
    ctx.labels <- label :: ctx.labels;
    let ins = match a with
      | "block" -> Block bt
      | "loop" -> Loop bt
      | _ -> If bt
    in
    parse_instrs ctx (ins :: acc) rest
  | "else" -> parse_instrs ctx (Else :: acc) rest
  | "end" ->
    (match ctx.labels with
     | _ :: tl -> ctx.labels <- tl
     | [] -> error "end without open block");
    parse_instrs ctx (End :: acc) rest
  | "br" ->
    let l, rest = take1 rest "br" in
    parse_instrs ctx (Br (resolve_label ctx l) :: acc) rest
  | "br_if" ->
    let l, rest = take1 rest "br_if" in
    parse_instrs ctx (BrIf (resolve_label ctx l) :: acc) rest
  | "br_table" ->
    let rec take_labels ls rest =
      match rest with
      | Atom x :: rest'
        when (match int_of_string_opt x with Some _ -> true | None -> String.length x > 0 && x.[0] = '$') ->
        take_labels (resolve_label ctx x :: ls) rest'
      | _ -> (List.rev ls, rest)
    in
    let ls, rest = take_labels [] rest in
    (match List.rev ls with
     | d :: rev_init -> parse_instrs ctx (BrTable (List.rev rev_init, d) :: acc) rest
     | [] -> error "br_table needs labels")
  | "call" ->
    let f, rest = take1 rest "call" in
    parse_instrs ctx (Call (resolve ctx.env.func_names f "function") :: acc) rest
  | "call_indirect" ->
    (* (type n) clause or inline signature not supported beyond (type n) *)
    (match rest with
     | List [ Atom "type"; Atom t ] :: rest' ->
       parse_instrs ctx (CallIndirect (resolve ctx.env.type_names t "type") :: acc) rest'
     | _ -> error "call_indirect requires a (type n) clause")
  | "local.get" | "get_local" ->
    let x, rest = take1 rest a in
    parse_instrs ctx (LocalGet (resolve ctx.locals x "local") :: acc) rest
  | "local.set" | "set_local" ->
    let x, rest = take1 rest a in
    parse_instrs ctx (LocalSet (resolve ctx.locals x "local") :: acc) rest
  | "local.tee" | "tee_local" ->
    let x, rest = take1 rest a in
    parse_instrs ctx (LocalTee (resolve ctx.locals x "local") :: acc) rest
  | "global.get" | "get_global" ->
    let x, rest = take1 rest a in
    parse_instrs ctx (GlobalGet (resolve ctx.env.global_names x "global") :: acc) rest
  | "global.set" | "set_global" ->
    let x, rest = take1 rest a in
    parse_instrs ctx (GlobalSet (resolve ctx.env.global_names x "global") :: acc) rest
  | "i32.const" ->
    let x, rest = take1 rest a in
    parse_instrs ctx (Const (Value.I32 (parse_int32 x)) :: acc) rest
  | "i64.const" ->
    let x, rest = take1 rest a in
    parse_instrs ctx (Const (Value.I64 (parse_int64 x)) :: acc) rest
  | "f32.const" ->
    let x, rest = take1 rest a in
    parse_instrs ctx (Const (Value.f32 (parse_float x)) :: acc) rest
  | "f64.const" ->
    let x, rest = take1 rest a in
    parse_instrs ctx (Const (Value.F64 (parse_float x)) :: acc) rest
  | _ ->
    (match List.assoc_opt a load_store_instrs with
     | Some (natural, op) ->
       let offset, align, rest = parse_memarg ~default_align:natural rest in
       let op =
         match op with
         | Load l -> Load { l with lalign = align; loffset = offset }
         | Store s -> Store { s with salign = align; soffset = offset }
         | _ -> assert false
       in
       parse_instrs ctx (op :: acc) rest
     | None ->
       (match List.assoc_opt a simple_instrs with
        | Some ins -> parse_instrs ctx (ins :: acc) rest
        | None -> error "unknown instruction %S" a))

(** A folded instruction: operands first, then the head. *)
and parse_folded ctx acc head inner : instr list =
  match head with
  | "block" | "loop" ->
    let label, inner = take_label inner in
    let bt, inner = parse_block_type inner in
    ctx.labels <- label :: ctx.labels;
    let body = parse_instrs ctx [] inner in
    ctx.labels <- List.tl ctx.labels;
    (End :: body) @ ((if head = "block" then Block bt else Loop bt) :: acc)
  | "if" ->
    let label, inner = take_label inner in
    let bt, inner = parse_block_type inner in
    (* condition expressions come before the (then ...) clause *)
    let rec split_cond cond = function
      | List (Atom "then" :: then_body) :: rest -> (List.rev cond, then_body, rest)
      | x :: rest -> split_cond (x :: cond) rest
      | [] -> error "folded if requires a (then ...) clause"
    in
    let cond, then_body, rest = split_cond [] inner in
    let acc = parse_instrs ctx acc cond in
    ctx.labels <- label :: ctx.labels;
    let then_instrs = parse_instrs ctx [] then_body in
    let else_instrs =
      match rest with
      | [] -> []
      | [ List (Atom "else" :: else_body) ] -> parse_instrs ctx [] else_body
      | _ -> error "unexpected clauses after (then ...)"
    in
    ctx.labels <- List.tl ctx.labels;
    let folded =
      match else_instrs with
      | [] -> End :: then_instrs
      | _ -> (End :: else_instrs) @ (Else :: then_instrs)
    in
    folded @ (If bt :: acc)
  | _ ->
    (* (op operand1 operand2 ...): split immediates from operand forms *)
    let imms, operands = List.partition (function List _ -> false | _ -> true) inner in
    let acc = List.fold_left (fun acc operand ->
      match operand with
      | List (Atom h :: rest) -> parse_folded ctx acc h rest
      | _ -> error "bad operand")
      acc operands
    in
    parse_plain ctx acc head imms |> fun r ->
    (* parse_plain with rest=imms consumed them and returned the result *)
    r

(* --- module fields -------------------------------------------------------- *)

type partial = {
  mutable p_types : func_type list;  (* reversed *)
  mutable p_imports : import list;
  mutable p_funcs : (string option * value_type list * value_type list *
                     (string * int) list * value_type list * sexp list *
                     string option) list;
      (* name, params, results, local names(with params), locals, body sexps, export *)
  mutable p_tables : table_type list;
  mutable p_memories : memory_type list;
  mutable p_globals : (string option * global_type * sexp list * string option) list;
  mutable p_exports : export list;
  mutable p_start : string option;
  mutable p_elems : (sexp list * string list) list;
  mutable p_datas : (sexp list * string) list;
}

let type_index_of p ft =
  let rec find i = function
    | [] -> None
    | t :: rest -> if equal_func_type t ft then Some (List.length p.p_types - 1 - i) else find (i + 1) rest
  in
  match find 0 p.p_types with
  | Some i -> i
  | None ->
    p.p_types <- ft :: p.p_types;
    List.length p.p_types - 1

let parse_limits = function
  | [ Atom min ] -> { lim_min = int_of_string min; lim_max = None }
  | [ Atom min; Atom max ] -> { lim_min = int_of_string min; lim_max = Some (int_of_string max) }
  | _ -> error "bad limits"

let const_expr_of env sexps =
  (* the environment is needed for global.get in initialisers *)
  let ctx = { env; locals = []; labels = [] } in
  List.rev (parse_instrs ctx [] sexps)

(** Parse a module from its text representation. *)
let parse (src : string) : module_ =
  let top =
    match tokenize src with
    | [ List (Atom "module" :: fields) ] -> fields
    | fields -> fields  (* allow a bare field list *)
  in
  let env = { func_names = []; global_names = []; type_names = [] } in
  let p = {
    p_types = []; p_imports = []; p_funcs = []; p_tables = []; p_memories = [];
    p_globals = []; p_exports = []; p_start = None; p_elems = []; p_datas = [];
  } in
  let n_func_imports = ref 0 in
  let func_count = ref 0 in
  let global_count = ref 0 in
  (* imported functions occupy the first indices, so count them before
     assigning indices to named module functions *)
  List.iter
    (fun field ->
       match field with
       | List (Atom "import" :: Str _ :: Str _ :: [ List (Atom "func" :: rest) ]) ->
         (match take_label rest with
          | Some n, _ -> env.func_names <- (n, !n_func_imports) :: env.func_names
          | None, _ -> ());
         incr n_func_imports
       | _ -> ())
    top;
  (* first pass: establish names and indices *)
  List.iter
    (fun field ->
       match field with
       | List (Atom "type" :: rest) ->
         let name, rest = take_label rest in
         (match rest with
          | [ List (Atom "func" :: sig_) ] ->
            let params, results, _, _ = parse_func_sig sig_ in
            let idx = List.length p.p_types in
            p.p_types <- { params; results } :: p.p_types;
            (match name with
             | Some n -> env.type_names <- (n, idx) :: env.type_names
             | None -> ())
          | _ -> error "bad type field")
       | List (Atom "import" :: _) ->
         (* counted in second pass; imports must precede funcs in our subset *)
         ()
       | List (Atom "func" :: rest) ->
         let name, _ = take_label rest in
         (match name with
          | Some n -> env.func_names <- (n, !func_count + !n_func_imports) :: env.func_names
          | None -> ());
         incr func_count
       | List (Atom "global" :: rest) ->
         let name, _ = take_label rest in
         (match name with
          | Some n -> env.global_names <- (n, !global_count) :: env.global_names
          | None -> ());
         incr global_count
       | _ -> ())
    top;
  (* second pass: collect fields *)
  List.iter
    (fun field ->
       match field with
       | List (Atom "type" :: _) -> ()
       | List (Atom "import" :: Str module_name :: Str item_name :: [ desc ]) ->
         let idesc =
           match desc with
           | List (Atom "func" :: rest) ->
             let _, rest = take_label rest in
             (match rest with
              | [ List [ Atom "type"; Atom t ] ] ->
                (* explicit type-use, as the printer emits *)
                FuncImport (resolve env.type_names t "type")
              | _ ->
                let params, results, _, _ = parse_func_sig rest in
                FuncImport (type_index_of p { params; results }))
           | List (Atom "memory" :: lims) -> MemoryImport { mem_limits = parse_limits lims }
           | List (Atom "table" :: rest) ->
             let lims = List.filter (function Atom "funcref" -> false | _ -> true) rest in
             TableImport { tbl_limits = parse_limits lims }
           | List [ Atom "global"; Atom ty ] ->
             GlobalImport { content = value_type_of_atom ty; mutability = Immutable }
           | List [ Atom "global"; List [ Atom "mut"; Atom ty ] ] ->
             GlobalImport { content = value_type_of_atom ty; mutability = Mutable }
           | _ -> error "bad import description"
         in
         p.p_imports <- { module_name; item_name; idesc } :: p.p_imports
       | List (Atom "func" :: rest) ->
         let name, rest = take_label rest in
         let export, rest =
           match rest with
           | List [ Atom "export"; Str e ] :: r -> (Some e, r)
           | r -> (None, r)
         in
         let params, results, rest, param_names = parse_func_sig rest in
         let locals = ref [] and local_names = ref param_names and body = ref [] in
         let n_locals = ref (List.length params) in
         List.iter
           (fun f ->
              match f with
              | List (Atom "local" :: Atom n :: tys) when String.length n > 0 && n.[0] = '$' ->
                (match tys with
                 | [ Atom ty ] ->
                   local_names := (n, !n_locals) :: !local_names;
                   incr n_locals;
                   locals := value_type_of_atom ty :: !locals
                 | _ -> error "named local takes one type")
              | List (Atom "local" :: tys) ->
                let ts = parse_value_types tys in
                n_locals := !n_locals + List.length ts;
                locals := List.rev_append ts !locals
              | f -> body := f :: !body)
           rest;
         p.p_funcs <-
           (name, params, results, !local_names, List.rev !locals, List.rev !body, export)
           :: p.p_funcs
       | List (Atom "memory" :: rest) ->
         let _, rest = take_label rest in
         p.p_memories <- { mem_limits = parse_limits rest } :: p.p_memories
       | List (Atom "table" :: rest) ->
         let _, rest = take_label rest in
         let lims = List.filter (function Atom "funcref" -> false | _ -> true) rest in
         p.p_tables <- { tbl_limits = parse_limits lims } :: p.p_tables
       | List (Atom "global" :: rest) ->
         let name, rest = take_label rest in
         let export, rest =
           match rest with
           | List [ Atom "export"; Str e ] :: r -> (Some e, r)
           | r -> (None, r)
         in
         (match rest with
          | [ ty_form; init ] ->
            let gtype =
              match ty_form with
              | Atom ty -> { content = value_type_of_atom ty; mutability = Immutable }
              | List [ Atom "mut"; Atom ty ] ->
                { content = value_type_of_atom ty; mutability = Mutable }
              | _ -> error "bad global type"
            in
            p.p_globals <- (name, gtype, [ init ], export) :: p.p_globals
          | _ -> error "bad global field")
       | List (Atom "export" :: Str name :: [ desc ]) ->
         let edesc =
           match desc with
           | List [ Atom "func"; Atom x ] -> FuncExport (resolve env.func_names x "function")
           | List [ Atom "memory"; Atom x ] -> MemoryExport (int_of_string x)
           | List [ Atom "table"; Atom x ] -> TableExport (int_of_string x)
           | List [ Atom "global"; Atom x ] -> GlobalExport (resolve env.global_names x "global")
           | _ -> error "bad export description"
         in
         p.p_exports <- { name; edesc } :: p.p_exports
       | List [ Atom "start"; Atom f ] -> p.p_start <- Some f
       | List (Atom "elem" :: List offset :: rest) ->
         let funcs =
           List.filter_map
             (function
               | Atom "func" -> None
               | Atom x -> Some x
               | _ -> error "bad elem entry")
             rest
         in
         p.p_elems <- ([ List offset ], funcs) :: p.p_elems
       | List (Atom "data" :: List offset :: strs) ->
         let bytes =
           String.concat "" (List.map (function Str s -> s | _ -> error "bad data") strs)
         in
         p.p_datas <- ([ List offset ], bytes) :: p.p_datas
       | _ -> error "unknown module field")
    top;
  (* finalise: compile function bodies now that all names are known *)
  let funcs =
    List.rev_map
      (fun (_, params, results, local_names, locals, body_sexps, _) ->
         let ctx = { env; locals = local_names; labels = [] } in
         let body = List.rev (parse_instrs ctx [] body_sexps) in
         { ftype = type_index_of p { params; results }; locals; body })
      p.p_funcs
  in
  let inline_exports =
    List.rev p.p_funcs
    |> List.mapi (fun k (_, _, _, _, _, _, export) -> (k, export))
    |> List.filter_map (fun (k, export) ->
      Option.map (fun e -> { name = e; edesc = FuncExport (!n_func_imports + k) }) export)
  in
  let global_exports =
    List.rev p.p_globals
    |> List.mapi (fun k (_, _, _, export) -> (k, export))
    |> List.filter_map (fun (k, export) ->
      Option.map (fun e -> { name = e; edesc = GlobalExport k }) export)
  in
  {
    types = List.rev p.p_types;
    imports = List.rev p.p_imports;
    funcs;
    tables = List.rev p.p_tables;
    memories = List.rev p.p_memories;
    globals =
      List.rev_map
        (fun (_, gtype, init, _) -> { gtype; ginit = const_expr_of env init })
        p.p_globals;
    exports = List.rev p.p_exports @ inline_exports @ global_exports;
    start = Option.map (fun f -> resolve env.func_names f "function") p.p_start;
    elems =
      List.rev_map
        (fun (offset, fs) ->
           { etable = 0;
             eoffset = const_expr_of env offset;
             einit = List.map (fun f -> resolve env.func_names f "function") fs })
        p.p_elems;
    datas =
      List.rev_map
        (fun (offset, bytes) -> { dmemory = 0; doffset = const_expr_of env offset; dinit = bytes })
        p.p_datas;
  }
