(** Printer for the WebAssembly text format (linear style, one instruction
    per line, blocks indented). Intended for debugging, examples and the
    [wasm_tool wat] command; there is no text-format parser. *)

open Types
open Ast

let vt = string_of_value_type

let block_type_suffix = function
  | None -> ""
  | Some t -> Printf.sprintf " (result %s)" (vt t)

let escape_name s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | c when Char.code c < 0x20 || Char.code c >= 0x7F ->
         Buffer.add_string buf (Printf.sprintf "\\%02x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let string_of_const = function
  | Value.I32 x -> Printf.sprintf "i32.const %ld" x
  | Value.I64 x -> Printf.sprintf "i64.const %Ld" x
  | Value.F32 b -> Printf.sprintf "f32.const %h" (Value.F32_repr.to_float b)
  | Value.F64 f -> Printf.sprintf "f64.const %h" f

let instr_text i =
  match i with
  | Block bt -> "block" ^ block_type_suffix bt
  | Loop bt -> "loop" ^ block_type_suffix bt
  | If bt -> "if" ^ block_type_suffix bt
  | Const v -> string_of_const v
  | Load op ->
    Printf.sprintf "%s offset=%d align=%d" (string_of_instr i) op.loffset (1 lsl op.lalign)
  | Store op ->
    Printf.sprintf "%s offset=%d align=%d" (string_of_instr i) op.soffset (1 lsl op.salign)
  | CallIndirect t -> Printf.sprintf "call_indirect (type %d)" t
  | _ -> string_of_instr i

let print_body buf ~indent instrs =
  let level = ref indent in
  List.iter
    (fun i ->
       (match i with
        | End | Else -> level := max indent (!level - 1)
        | _ -> ());
       Buffer.add_string buf (String.make (2 * !level) ' ');
       Buffer.add_string buf (instr_text i);
       Buffer.add_char buf '\n';
       match i with
       | Block _ | Loop _ | If _ | Else -> incr level
       | _ -> ())
    instrs

let func_sig_text (ft : func_type) =
  let params = match ft.params with
    | [] -> ""
    | ps -> " (param " ^ String.concat " " (List.map vt ps) ^ ")"
  in
  let results = match ft.results with
    | [] -> ""
    | rs -> " (result " ^ String.concat " " (List.map vt rs) ^ ")"
  in
  params ^ results

let limits_text { lim_min; lim_max } =
  match lim_max with
  | None -> string_of_int lim_min
  | Some max -> Printf.sprintf "%d %d" lim_min max

(** Render a module in the text format. *)
let to_string (m : module_) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "(module\n";
  List.iteri
    (fun i ft -> Buffer.add_string buf (Printf.sprintf "  (type (;%d;) (func%s))\n" i (func_sig_text ft)))
    m.types;
  List.iter
    (fun imp ->
       let desc =
         match imp.idesc with
         | FuncImport ti -> Printf.sprintf "(func (type %d))" ti
         | TableImport tt -> Printf.sprintf "(table %s funcref)" (limits_text tt.tbl_limits)
         | MemoryImport mt -> Printf.sprintf "(memory %s)" (limits_text mt.mem_limits)
         | GlobalImport gt ->
           if gt.mutability = Mutable then Printf.sprintf "(global (mut %s))" (vt gt.content)
           else Printf.sprintf "(global %s)" (vt gt.content)
       in
       Buffer.add_string buf
         (Printf.sprintf "  (import \"%s\" \"%s\" %s)\n" (escape_name imp.module_name)
            (escape_name imp.item_name) desc))
    m.imports;
  List.iter
    (fun t -> Buffer.add_string buf (Printf.sprintf "  (table %s funcref)\n" (limits_text t.tbl_limits)))
    m.tables;
  List.iter
    (fun mt -> Buffer.add_string buf (Printf.sprintf "  (memory %s)\n" (limits_text mt.mem_limits)))
    m.memories;
  List.iteri
    (fun i g ->
       let ty =
         if g.gtype.mutability = Mutable then Printf.sprintf "(mut %s)" (vt g.gtype.content)
         else vt g.gtype.content
       in
       let init = match g.ginit with
         | [ Const v ] -> string_of_const v
         | [ GlobalGet k ] -> Printf.sprintf "global.get %d" k
         | _ -> "..."
       in
       Buffer.add_string buf
         (Printf.sprintf "  (global (;%d;) %s (%s))\n" (num_imported_globals m + i) ty init))
    m.globals;
  let n_imp = num_imported_funcs m in
  List.iteri
    (fun i f ->
       let ft = List.nth m.types f.ftype in
       Buffer.add_string buf (Printf.sprintf "  (func (;%d;)%s\n" (n_imp + i) (func_sig_text ft));
       (match f.locals with
        | [] -> ()
        | ls ->
          Buffer.add_string buf
            ("    (local " ^ String.concat " " (List.map vt ls) ^ ")\n"));
       print_body buf ~indent:2 f.body;
       Buffer.add_string buf "  )\n")
    m.funcs;
  (match m.start with
   | None -> ()
   | Some f -> Buffer.add_string buf (Printf.sprintf "  (start %d)\n" f));
  List.iter
    (fun e ->
       let init = String.concat " " (List.map string_of_int e.einit) in
       let off = match e.eoffset with
         | [ Const v ] -> string_of_const v
         | _ -> "..."
       in
       Buffer.add_string buf (Printf.sprintf "  (elem (%s) func %s)\n" off init))
    m.elems;
  List.iter
    (fun d ->
       let off = match d.doffset with
         | [ Const v ] -> string_of_const v
         | _ -> "..."
       in
       Buffer.add_string buf
         (Printf.sprintf "  (data (%s) \"%s\")\n" off (escape_name d.dinit)))
    m.datas;
  List.iter
    (fun e ->
       let desc =
         match e.edesc with
         | FuncExport i -> Printf.sprintf "(func %d)" i
         | TableExport i -> Printf.sprintf "(table %d)" i
         | MemoryExport i -> Printf.sprintf "(memory %d)" i
         | GlobalExport i -> Printf.sprintf "(global %d)" i
       in
       Buffer.add_string buf (Printf.sprintf "  (export \"%s\" %s)\n" (escape_name e.name) desc))
    m.exports;
  Buffer.add_string buf ")\n";
  Buffer.contents buf
