(** Parsing of the WebAssembly binary format (MVP, version 1).

    Decoding is a hardened, total function over arbitrary byte strings:
    every failure raises the structured {!Decode_error} (with a stable
    taxonomy code and the byte offset of the offending input) — never
    [Stack_overflow], [Invalid_argument], [Out_of_memory] or an uncaught
    [Failure]. Attacker-controlled counts are clamped against the
    remaining input before any allocation ({!limits}), and block nesting
    and per-function local counts are bounded. *)

open Types
open Ast

exception Decode_error = Error.Decode_error

(** Decode-time resource limits: graceful degradation on adversarial
    inputs. The defaults are far above anything a legitimate MVP module
    produces but small enough that rejection happens before any
    pathological allocation. *)
type limits = {
  max_nesting : int;  (** deepest block/loop/if nesting inside one body *)
  max_locals : int;  (** declared locals per function (spec impl. limit) *)
  max_items : int;  (** hard cap on any single vector length *)
}

let default_limits = { max_nesting = 1_024; max_locals = 50_000; max_items = 2_000_000 }

type stream = {
  src : string;
  pos : int ref;
  lim : limits;
}

let stream ?(limits = default_limits) src = { src; pos = ref 0; lim = limits }
let eos s = !(s.pos) >= String.length s.src
let remaining s = String.length s.src - !(s.pos)

let error_at off code fmt =
  Printf.ksprintf
    (fun message ->
       raise (Decode_error { Error.phase = Error.Decode; code; offset = Some off; message }))
    fmt

let error s code fmt = error_at !(s.pos) code fmt

let byte s =
  if eos s then error s "unexpected-eof" "unexpected end of input";
  let b = Char.code s.src.[!(s.pos)] in
  incr s.pos;
  b

let peek s = if eos s then None else Some (Char.code s.src.[!(s.pos)])

let take s n =
  if n < 0 || n > remaining s then error s "unexpected-eof" "unexpected end of input";
  let str = String.sub s.src !(s.pos) n in
  s.pos := !(s.pos) + n;
  str

(* LEB128 readers: [Leb128.Overflow] signals an over-long or out-of-range
   encoding, [Invalid_argument] a truncated one; both become structured
   decode errors here, anchored at the integer's first byte. *)
let leb reader s =
  let off = !(s.pos) in
  try reader s.src s.pos with
  | Leb128.Overflow m -> error_at off "malformed-leb128" "%s" m
  | Invalid_argument _ -> error_at off "unexpected-eof" "unexpected end of input in LEB128"

let uint s = leb Leb128.read_uint s
let s32 s = leb Leb128.read_s32 s
let s64 s = leb Leb128.read_s64 s
let _u32 s = leb Leb128.read_u32 s

let f32_bits s =
  let b = take s 4 in
  let v = ref 0l in
  for i = 3 downto 0 do
    v := Int32.logor (Int32.shift_left !v 8) (Int32.of_int (Char.code b.[i]))
  done;
  !v

let f64_value s =
  let b = take s 8 in
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code b.[i]))
  done;
  Int64.float_of_bits !v

let name s =
  let n = uint s in
  take s n

(** Read a vector header and check the claimed length against the
    remaining input {e before} materialising anything: every element of
    every MVP vector consumes at least one byte, so a count larger than
    the bytes left is malformed regardless of the element type. This is
    what keeps a 5-byte file from requesting a multi-gigabyte list. *)
let vec_len s =
  let off = !(s.pos) in
  let n = uint s in
  if n > remaining s then
    error_at off "vec-too-long" "vector of %d elements exceeds the %d bytes of remaining input"
      n (remaining s);
  if n > s.lim.max_items then
    error_at off "vec-too-long" "vector of %d elements exceeds the decoder limit of %d"
      n s.lim.max_items;
  n

let vec s f =
  let n = vec_len s in
  let rec go i acc = if i = 0 then List.rev acc else go (i - 1) (f s :: acc) in
  go n []

let value_type s =
  match byte s with
  | 0x7F -> I32T
  | 0x7E -> I64T
  | 0x7D -> F32T
  | 0x7C -> F64T
  | b -> error_at (!(s.pos) - 1) "bad-value-type" "invalid value type 0x%02X" b

let block_type s =
  match peek s with
  | Some 0x40 -> ignore (byte s); None
  | _ -> Some (value_type s)

let limits_ s =
  match byte s with
  | 0x00 -> { lim_min = uint s; lim_max = None }
  | 0x01 ->
    let min = uint s in
    let max = uint s in
    { lim_min = min; lim_max = Some max }
  | b -> error_at (!(s.pos) - 1) "bad-limits-flag" "invalid limits flag 0x%02X" b

let global_type s =
  let content = value_type s in
  let mutability =
    match byte s with
    | 0x00 -> Immutable
    | 0x01 -> Mutable
    | b -> error_at (!(s.pos) - 1) "bad-mutability" "invalid mutability 0x%02X" b
  in
  { content; mutability }

let func_type s =
  (match byte s with
   | 0x60 -> ()
   | b -> error_at (!(s.pos) - 1) "bad-functype-tag" "invalid function type tag 0x%02X" b);
  let params = vec s value_type in
  let results = vec s value_type in
  { params; results }

let table_type s =
  (match byte s with
   | 0x70 -> ()
   | b -> error_at (!(s.pos) - 1) "bad-elemtype" "invalid element type 0x%02X" b);
  { tbl_limits = limits_ s }

let memarg s =
  let align = uint s in
  let offset = uint s in
  (align, offset)

let load_op s lty lpack =
  let align, offset = memarg s in
  Load { lty; lalign = align; loffset = offset; lpack }

let store_op s sty spack =
  let align, offset = memarg s in
  Store { sty; salign = align; soffset = offset; spack }

let instr s : instr =
  match byte s with
  | 0x00 -> Unreachable
  | 0x01 -> Nop
  | 0x02 -> Block (block_type s)
  | 0x03 -> Loop (block_type s)
  | 0x04 -> If (block_type s)
  | 0x05 -> Else
  | 0x0B -> End
  | 0x0C -> Br (uint s)
  | 0x0D -> BrIf (uint s)
  | 0x0E ->
    let ls = vec s uint in
    let d = uint s in
    BrTable (ls, d)
  | 0x0F -> Return
  | 0x10 -> Call (uint s)
  | 0x11 ->
    let t = uint s in
    (match byte s with
     | 0x00 -> ()
     | b -> error_at (!(s.pos) - 1) "nonzero-table-index" "non-zero table index 0x%02X in call_indirect" b);
    CallIndirect t
  | 0x1A -> Drop
  | 0x1B -> Select
  | 0x20 -> LocalGet (uint s)
  | 0x21 -> LocalSet (uint s)
  | 0x22 -> LocalTee (uint s)
  | 0x23 -> GlobalGet (uint s)
  | 0x24 -> GlobalSet (uint s)
  | 0x28 -> load_op s I32T None
  | 0x29 -> load_op s I64T None
  | 0x2A -> load_op s F32T None
  | 0x2B -> load_op s F64T None
  | 0x2C -> load_op s I32T (Some (Pack8, SX))
  | 0x2D -> load_op s I32T (Some (Pack8, ZX))
  | 0x2E -> load_op s I32T (Some (Pack16, SX))
  | 0x2F -> load_op s I32T (Some (Pack16, ZX))
  | 0x30 -> load_op s I64T (Some (Pack8, SX))
  | 0x31 -> load_op s I64T (Some (Pack8, ZX))
  | 0x32 -> load_op s I64T (Some (Pack16, SX))
  | 0x33 -> load_op s I64T (Some (Pack16, ZX))
  | 0x34 -> load_op s I64T (Some (Pack32, SX))
  | 0x35 -> load_op s I64T (Some (Pack32, ZX))
  | 0x36 -> store_op s I32T None
  | 0x37 -> store_op s I64T None
  | 0x38 -> store_op s F32T None
  | 0x39 -> store_op s F64T None
  | 0x3A -> store_op s I32T (Some Pack8)
  | 0x3B -> store_op s I32T (Some Pack16)
  | 0x3C -> store_op s I64T (Some Pack8)
  | 0x3D -> store_op s I64T (Some Pack16)
  | 0x3E -> store_op s I64T (Some Pack32)
  | 0x3F ->
    (match byte s with
     | 0x00 -> MemorySize
     | b -> error_at (!(s.pos) - 1) "nonzero-memory-index" "non-zero memory index 0x%02X" b)
  | 0x40 ->
    (match byte s with
     | 0x00 -> MemoryGrow
     | b -> error_at (!(s.pos) - 1) "nonzero-memory-index" "non-zero memory index 0x%02X" b)
  | 0x41 -> Const (Value.I32 (s32 s))
  | 0x42 -> Const (Value.I64 (s64 s))
  | 0x43 -> Const (Value.F32 (f32_bits s))
  | 0x44 -> Const (Value.F64 (f64_value s))
  | 0x45 -> Test (IEqz S32)
  | 0x50 -> Test (IEqz S64)
  | b when b >= 0x46 && b <= 0x4F ->
    let ops = [| Eq; Ne; LtS; LtU; GtS; GtU; LeS; LeU; GeS; GeU |] in
    Compare (IRel (S32, ops.(b - 0x46)))
  | b when b >= 0x51 && b <= 0x5A ->
    let ops = [| Eq; Ne; LtS; LtU; GtS; GtU; LeS; LeU; GeS; GeU |] in
    Compare (IRel (S64, ops.(b - 0x51)))
  | b when b >= 0x5B && b <= 0x60 ->
    let ops = [| FEq; FNe; FLt; FGt; FLe; FGe |] in
    Compare (FRel (SF32, ops.(b - 0x5B)))
  | b when b >= 0x61 && b <= 0x66 ->
    let ops = [| FEq; FNe; FLt; FGt; FLe; FGe |] in
    Compare (FRel (SF64, ops.(b - 0x61)))
  | b when b >= 0x67 && b <= 0x69 ->
    let ops = [| Clz; Ctz; Popcnt |] in
    Unary (IUn (S32, ops.(b - 0x67)))
  | b when b >= 0x79 && b <= 0x7B ->
    let ops = [| Clz; Ctz; Popcnt |] in
    Unary (IUn (S64, ops.(b - 0x79)))
  | b when b >= 0x6A && b <= 0x78 ->
    let ops = [| Add; Sub; Mul; DivS; DivU; RemS; RemU; And; Or; Xor; Shl; ShrS; ShrU; Rotl; Rotr |] in
    Binary (IBin (S32, ops.(b - 0x6A)))
  | b when b >= 0x7C && b <= 0x8A ->
    let ops = [| Add; Sub; Mul; DivS; DivU; RemS; RemU; And; Or; Xor; Shl; ShrS; ShrU; Rotl; Rotr |] in
    Binary (IBin (S64, ops.(b - 0x7C)))
  | b when b >= 0x8B && b <= 0x91 ->
    let ops = [| Abs; Neg; Ceil; Floor; Trunc; Nearest; Sqrt |] in
    Unary (FUn (SF32, ops.(b - 0x8B)))
  | b when b >= 0x99 && b <= 0x9F ->
    let ops = [| Abs; Neg; Ceil; Floor; Trunc; Nearest; Sqrt |] in
    Unary (FUn (SF64, ops.(b - 0x99)))
  | b when b >= 0x92 && b <= 0x98 ->
    let ops = [| FAdd; FSub; FMul; FDiv; Min; Max; CopySign |] in
    Binary (FBin (SF32, ops.(b - 0x92)))
  | b when b >= 0xA0 && b <= 0xA6 ->
    let ops = [| FAdd; FSub; FMul; FDiv; Min; Max; CopySign |] in
    Binary (FBin (SF64, ops.(b - 0xA0)))
  | b when b >= 0xA7 && b <= 0xBF ->
    let ops = [|
      I32WrapI64;
      I32TruncF32S; I32TruncF32U; I32TruncF64S; I32TruncF64U;
      I64ExtendI32S; I64ExtendI32U;
      I64TruncF32S; I64TruncF32U; I64TruncF64S; I64TruncF64U;
      F32ConvertI32S; F32ConvertI32U; F32ConvertI64S; F32ConvertI64U;
      F32DemoteF64;
      F64ConvertI32S; F64ConvertI32U; F64ConvertI64S; F64ConvertI64U;
      F64PromoteF32;
      I32ReinterpretF32; I64ReinterpretF64; F32ReinterpretI32; F64ReinterpretI64;
    |] in
    Convert ops.(b - 0xA7)
  | 0xC0 -> Unary (IUn (S32, Ext8S))
  | 0xC1 -> Unary (IUn (S32, Ext16S))
  | 0xC2 -> Unary (IUn (S64, Ext8S))
  | 0xC3 -> Unary (IUn (S64, Ext16S))
  | 0xC4 -> Unary (IUn (S64, Ext32S))
  | 0xFC ->
    (match uint s with
     | 0 -> Convert I32TruncSatF32S
     | 1 -> Convert I32TruncSatF32U
     | 2 -> Convert I32TruncSatF64S
     | 3 -> Convert I32TruncSatF64U
     | 4 -> Convert I64TruncSatF32S
     | 5 -> Convert I64TruncSatF32U
     | 6 -> Convert I64TruncSatF64S
     | 7 -> Convert I64TruncSatF64U
     | sub -> error s "bad-subopcode" "unknown 0xFC sub-opcode %d" sub)
  | b -> error_at (!(s.pos) - 1) "bad-opcode" "invalid opcode 0x%02X at offset %d" b (!(s.pos) - 1)

(** Read instructions until (and not including) the [End] that closes the
    expression; nested blocks keep their own [End]s. Returns the flat
    instruction list, [End] consumed. Nesting is bounded by
    [limits.max_nesting]. *)
let expr s =
  let rec go depth acc =
    let i = instr s in
    match i with
    | End when depth = 0 -> List.rev acc
    | End -> go (depth - 1) (i :: acc)
    | Block _ | Loop _ | If _ ->
      if depth + 1 > s.lim.max_nesting then
        error s "nesting-too-deep" "block nesting exceeds the decoder limit of %d"
          s.lim.max_nesting;
      go (depth + 1) (i :: acc)
    | _ -> go depth (i :: acc)
  in
  go 0 []

let import s =
  let module_name = name s in
  let item_name = name s in
  let idesc =
    match byte s with
    | 0x00 -> FuncImport (uint s)
    | 0x01 -> TableImport (table_type s)
    | 0x02 -> MemoryImport { mem_limits = limits_ s }
    | 0x03 -> GlobalImport (global_type s)
    | b -> error_at (!(s.pos) - 1) "bad-import-kind" "invalid import kind 0x%02X" b
  in
  { module_name; item_name; idesc }

let export s =
  let nm = name s in
  let edesc =
    match byte s with
    | 0x00 -> FuncExport (uint s)
    | 0x01 -> TableExport (uint s)
    | 0x02 -> MemoryExport (uint s)
    | 0x03 -> GlobalExport (uint s)
    | b -> error_at (!(s.pos) - 1) "bad-export-kind" "invalid export kind 0x%02X" b
  in
  { name = nm; edesc }

let code s =
  let size = uint s in
  if size > remaining s then error s "unexpected-eof" "code entry size exceeds remaining input";
  let end_pos = !(s.pos) + size in
  let groups = vec s (fun s ->
    let n = uint s in
    let t = value_type s in
    (n, t))
  in
  (* the group counts are attacker-controlled and independent of the
     entry's byte size: bound their sum before expanding to a list *)
  let total = List.fold_left (fun acc (n, _) -> acc + n) 0 groups in
  if total > s.lim.max_locals then
    error s "too-many-locals" "%d declared locals exceed the decoder limit of %d" total
      s.lim.max_locals;
  let locals = List.concat_map (fun (n, t) -> List.init n (fun _ -> t)) groups in
  let body = expr s in
  if !(s.pos) <> end_pos then error s "size-mismatch" "code entry size mismatch";
  (locals, body)

let global s =
  let gtype = global_type s in
  let ginit = expr s in
  { gtype; ginit }

let elem s =
  let etable = uint s in
  let eoffset = expr s in
  let einit = vec s uint in
  { etable; eoffset; einit }

let data s =
  let dmemory = uint s in
  let doffset = expr s in
  let n = uint s in
  let dinit = take s n in
  { dmemory; doffset; dinit }

(** Parse a complete binary module. Custom sections are skipped.
    @raise Decode_error on any malformed input. *)
let decode ?limits (bin : string) : module_ =
  Obs.Span.with_ "decode" @@ fun () ->
  let s = stream ?limits bin in
  if take s 4 <> "\x00asm" then error_at 0 "bad-magic" "bad magic number";
  if take s 4 <> "\x01\x00\x00\x00" then error_at 4 "bad-version" "unsupported version";
  let m = ref empty_module in
  let func_type_indices = ref [] in
  let codes = ref [] in
  let last_id = ref 0 in
  while not (eos s) do
    let id = byte s in
    let size = uint s in
    if size > remaining s then
      error s "unexpected-eof" "section %d size %d exceeds remaining input" id size;
    let end_pos = !(s.pos) + size in
    if id <> 0 then begin
      if id <= !last_id then error s "section-order" "out-of-order section id %d" id;
      last_id := id
    end;
    (match id with
     | 0 -> ignore (take s size)  (* custom section *)
     | 1 -> m := { !m with types = vec s func_type }
     | 2 -> m := { !m with imports = vec s import }
     | 3 -> func_type_indices := vec s uint
     | 4 -> m := { !m with tables = vec s table_type }
     | 5 -> m := { !m with memories = vec s (fun s -> { mem_limits = limits_ s }) }
     | 6 -> m := { !m with globals = vec s global }
     | 7 -> m := { !m with exports = vec s export }
     | 8 -> m := { !m with start = Some (uint s) }
     | 9 -> m := { !m with elems = vec s elem }
     | 10 -> codes := vec s code
     | 11 -> m := { !m with datas = vec s data }
     | _ -> error s "bad-section-id" "invalid section id %d" id);
    if !(s.pos) <> end_pos then error s "size-mismatch" "section %d size mismatch" id
  done;
  if List.length !func_type_indices <> List.length !codes then
    error s "func-code-mismatch" "function and code section lengths disagree (%d vs %d)"
      (List.length !func_type_indices) (List.length !codes);
  let funcs =
    List.map2
      (fun ftype (locals, body) -> { ftype; locals; body })
      !func_type_indices !codes
  in
  { !m with funcs }
