(** Instance snapshot/restore: the state-isolation substrate for reusing
    one instance across adversarial runs.

    A snapshot captures everything a run can mutate: the linear memory
    image, global values, table entries, and the interpreter's mutable
    bookkeeping ([fuel], [steps], [call_depth], the operand-stack
    pointer, per-function tier-up hot counts). [restore] rewinds all of
    it, so a run that trapped, exhausted its fuel, hit a governor budget
    or absorbed an injected host fault leaves no residue for the next
    run — restore ≡ fresh [instantiate] up to observable state.

    Probe state is restored {e explicitly}: capture records a re-arm
    thunk from the registered probe controller ([inst_probes]) and
    restore runs it, re-arming exactly the probe set that was attached
    at capture time (or detaching everything when the snapshot predates
    the probes). See [snapshot.mli] for the full audit of what restore
    does and does not touch.

    Deliberately {e not} captured:

    - compiled tier state ([c_tier]): compiled closures are pure code,
      and a deopt ([T_unsupported]) records distrust of a body that a
      restore of {e data} should not reinstate. Hot counts are rewound
      so tier-up pressure restarts from the snapshot point.
    - the attached profiler / governor / tier policy: engine
      attachments, not run state; the caller re-arms its governor.
    - pending step triggers ([inst_triggers]): one-shot alarms keyed to
      the live [steps] counter; the party that registered them re-arms
      against the restored count if it still wants them.

    Cost model: capture and restore are both O(memory size) single
    [Bytes] copies plus O(globals + table) array copies — no per-page
    bookkeeping, no write barriers on the hot path, nothing at all
    unless a snapshot is actually taken. Restore of an un-grown memory
    blits in place (no allocation); after a grow it re-points the array,
    which also undoes the grow. [bench restore] measures both directions
    in pages/s. *)

open Interp

type t = {
  s_source : instance;
      (** the instance the snapshot was taken from — restoring into a
          different (forked) instance remaps source-owned function
          references in the table to the target *)
  s_mem : bytes option;
  s_globals : Value.t array;
  s_table : func_inst option array option;
  s_fuel : int;
  s_steps : int;
  s_call_depth : int;
  s_stack_size : int;
  s_hot : int array;
  s_probes : (unit -> unit) option;
      (** re-arms the probe set that was attached at capture time;
          [None] when no probe controller was registered *)
}

let restore_seconds =
  lazy
    (Obs.Metrics.histogram "wasabi_restore_seconds"
       ~help:"Time to restore an instance from a snapshot")

let capture (inst : instance) : t =
  {
    s_source = inst;
    s_mem = Option.map Memory.snapshot_bytes inst.inst_memory;
    s_globals = Array.map (fun g -> g.g_value) inst.inst_globals;
    s_table = Option.map (fun tb -> Array.copy tb.t_elems) inst.inst_table;
    s_fuel = inst.fuel;
    s_steps = inst.steps;
    s_call_depth = inst.call_depth;
    s_stack_size = inst.inst_stack.size;
    s_hot = Array.map (fun c -> c.c_hot) inst.inst_code;
    s_probes = Option.map (fun ps -> ps.ps_capture ()) inst.inst_probes;
  }

let pages t = match t.s_mem with None -> 0 | Some img -> Bytes.length img / Types.page_size

let restore (t : t) (inst : instance) : unit =
  let t0 = Obs.Clock.now_ns () in
  let cross = not (inst == t.s_source) in
  (match t.s_mem, inst.inst_memory with
   | Some img, Some mem -> Memory.restore_bytes mem img
   | None, _ | _, None -> ());
  (* global_inst records are shared with exports and cross-instance
     references: write values back in place, never replace the records *)
  Array.iteri (fun i g -> g.g_value <- t.s_globals.(i)) inst.inst_globals;
  (* restoring into a fork: function references owned by the snapshot's
     source must point at the target, or calls through the table would
     execute against the source's memory *)
  let remap slot =
    match slot with
    | Some (Wasm_func (j, owner)) when cross && owner == t.s_source ->
      Some (Wasm_func (j, inst))
    | _ -> slot
  in
  (match t.s_table, inst.inst_table with
   | Some elems, Some tb ->
     let n = Array.length elems in
     if Array.length tb.t_elems = n && not cross then
       Array.blit elems 0 tb.t_elems 0 n
     else if Array.length tb.t_elems = n then
       for i = 0 to n - 1 do
         tb.t_elems.(i) <- remap elems.(i)
       done
     else tb.t_elems <- Array.map remap elems
   | None, _ | _, None -> ());
  inst.fuel <- t.s_fuel;
  inst.steps <- t.s_steps;
  inst.call_depth <- t.s_call_depth;
  inst.inst_stack.size <- t.s_stack_size;
  let codes = inst.inst_code in
  for i = 0 to Array.length codes - 1 do
    codes.(i).c_hot <- t.s_hot.(i)
  done;
  (* probe state is restored explicitly, never left implicit: re-arm the
     probe set captured with the snapshot, or — if probes were attached
     after a probe-free capture — detach them all, so the restored
     instance observes exactly what the captured one did. A re-arm thunk
     operates on the snapshot's source; restoring into a fork instead
     detaches whatever the fork has (its probe set is its own affair). *)
  (match t.s_probes, inst.inst_probes with
   | Some rearm, _ when not cross -> rearm ()
   | _, Some ps -> ps.ps_detach_all ()
   | _ -> ());
  Obs.Metrics.observe (Lazy.force restore_seconds)
    (Obs.Clock.ns_to_s (Int64.sub (Obs.Clock.now_ns ()) t0))

(** A digest of everything [capture] would capture of the {e guest}
    state (memory, globals, table occupancy — not engine bookkeeping),
    for restore-idempotence checks: two instances with equal digests are
    indistinguishable to the next run's guest code. *)
let state_digest (inst : instance) : string =
  let buf = Buffer.create 256 in
  (match inst.inst_memory with
   | None -> Buffer.add_string buf "mem:none;"
   | Some m -> Buffer.add_string buf (Printf.sprintf "mem:%s;" (Digest.to_hex (Memory.digest m))));
  Array.iter (fun g -> Buffer.add_string buf (Value.to_string g.g_value); Buffer.add_char buf ';')
    inst.inst_globals;
  (match inst.inst_table with
   | None -> Buffer.add_string buf "table:none"
   | Some tb ->
     Array.iter
       (fun slot ->
          Buffer.add_string buf
            (match slot with
             | None -> "."
             | Some (Wasm_func (j, _)) -> Printf.sprintf "f%d," j
             | Some (Host_func h) -> Printf.sprintf "h%s," h.h_name))
       tb.t_elems);
  Digest.to_hex (Digest.string (Buffer.contents buf))
