(** Tier-1 execution: closure compilation of pre-decoded function bodies.

    Each function's xinstr stream is translated — once, when the
    tier-up policy decides the function is hot — into a tree of
    direct-threaded OCaml closures: one chained closure per basic
    block, with branches pre-resolved to the target block's closure
    and taken as OCaml tail calls. The tier-0 dispatch loop
    ({!Interp.exec_body}) remains the reference and deopt path; any
    body the compiler cannot handle stays on it permanently.

    What makes the compiled form faster than the dispatch loop:

    - {b No dispatch.} The per-instruction [match] disappears; each
      operation is a closure invoked in a straight chain, and operator
      sub-dispatch (which [ibinop]? which relop?) is resolved at
      compile time — the hottest operators are inlined directly into
      the emitted closure, the rest go through {!Eval_numeric}'s
      operator tables.
    - {b Unboxed slots.} In a validated module both the operand-stack
      height {e and} the value type at every program point are
      compile-time constants, so each stack slot and local is pinned
      to a typed scratch array: i32 values live as sign-extended
      native [int]s in [id]/[il], f64 values as unboxed [float]s in
      [fd]/[fl], and only the rare i64/f32 values keep their boxed
      {!Value.t} form on the instance stack. Straight-line arithmetic,
      comparisons, loads and stores therefore run allocation-free;
      boxing happens only at call boundaries, returns, globals and the
      generic fallback operators.
    - {b No label stack.} Branch targets, the values they carry and
      the heights they cut back to are all static; a taken branch is a
      (possibly empty) slot copy followed by a tail call. Loop
      back-edges jump to the target closure directly (blocks are
      compiled in increasing order, so a back-edge target is final);
      forward edges go through the target's cell.

    The i32 representation invariant: a slot of type i32 holds the
    value sign-extended to the native int (bits 31..62 replicate bit
    31). {!Eval_numeric.norm32} re-canonicalises after arithmetic,
    [land 0xFFFFFFFF] produces the unsigned reading for addresses and
    unsigned comparisons, and [Int32.of_int]/[Int32.to_int] convert
    exactly at the boxed boundary.

    Fuel, step counts and profiler site counts are charged with
    exactly the tier-0 boundaries: a block entered at position [sb]
    charges [c_run_len.(sb)] if and only if [sb >= charged], where
    [charged] mirrors the interpreter's [charged_upto] (taken branches
    reset it, fall-through edges keep it). Out-of-fuel exhaustion
    therefore cuts both tiers off at the same instruction, which is
    what lets the differential oracle compare exhausted runs too.

    The deopt contract: compiled bodies implement the [exec_body]
    calling convention exactly (boxed locals array in, boxed results
    at the frame base on return, traps/exhaustion raised as the same
    exceptions), so tier-0 and tier-1 frames interleave freely on one
    call stack — a compiled function calling an interpreted one and
    vice versa. *)

open Types
open Interp

(** Raised (internally) when a body uses a shape the compiler does not
    handle; {!compile} turns it into [None] and the function stays on
    tier 0. *)
exception Unsupported

let default_threshold = 32

(** Per-activation execution context threaded through every compiled
    closure. [base] is the frame's operand base (the stack size on
    entry); [charged] mirrors tier 0's [charged_upto]. The typed
    scratch arrays are indexed by static slot/local index directly:
    [id]/[fd] hold i32/f64 operand slots, [il]/[fl] hold i32/f64
    locals; i64 and f32 slots stay boxed at [st.data.(base + slot)]
    and i64/f32 locals in [locals]. *)
type ectx = {
  st : stack;
  locals : Value.t array;
  il : int array;
  fl : float array;
  id : int array;
  fd : float array;
  base : int;
  mutable charged : int;
}

type label = {
  l_target : int;  (** branch target: absolute instruction index *)
  l_height : int;  (** operand height the branch cuts back to *)
  l_ty : value_type option;  (** type of the single carried value *)
}

type frame = {
  f_label : label;
  f_bt : Ast.block_type;  (** result type of the block *)
  f_ts : value_type list;  (** type stack below the label at entry *)
  f_entry_dead : bool;
  f_loop : bool;
}

let bt_arity : Ast.block_type -> int = function None -> 0 | Some _ -> 1

let type_of_value : Value.t -> value_type = function
  | Value.I32 _ -> I32T
  | Value.I64 _ -> I64T
  | Value.F32 _ -> F32T
  | Value.F64 _ -> F64T

(** Source and destination types of a conversion operator. *)
let cvt_types : Ast.cvtop -> value_type * value_type = function
  | Ast.I32WrapI64 -> (I64T, I32T)
  | Ast.I32TruncF32S | Ast.I32TruncF32U | Ast.I32TruncSatF32S
  | Ast.I32TruncSatF32U ->
    (F32T, I32T)
  | Ast.I32TruncF64S | Ast.I32TruncF64U | Ast.I32TruncSatF64S
  | Ast.I32TruncSatF64U ->
    (F64T, I32T)
  | Ast.I64ExtendI32S | Ast.I64ExtendI32U -> (I32T, I64T)
  | Ast.I64TruncF32S | Ast.I64TruncF32U | Ast.I64TruncSatF32S
  | Ast.I64TruncSatF32U ->
    (F32T, I64T)
  | Ast.I64TruncF64S | Ast.I64TruncF64U | Ast.I64TruncSatF64S
  | Ast.I64TruncSatF64U ->
    (F64T, I64T)
  | Ast.F32ConvertI32S | Ast.F32ConvertI32U -> (I32T, F32T)
  | Ast.F32ConvertI64S | Ast.F32ConvertI64U -> (I64T, F32T)
  | Ast.F32DemoteF64 -> (F64T, F32T)
  | Ast.F64ConvertI32S | Ast.F64ConvertI32U -> (I32T, F64T)
  | Ast.F64ConvertI64S | Ast.F64ConvertI64U -> (I64T, F64T)
  | Ast.F64PromoteF32 -> (F32T, F64T)
  | Ast.I32ReinterpretF32 -> (F32T, I32T)
  | Ast.I64ReinterpretF64 -> (F64T, I64T)
  | Ast.F32ReinterpretI32 -> (I32T, F32T)
  | Ast.F64ReinterpretI64 -> (I64T, F64T)

(** {1 Pass 1: static heights and types}

    A validator-style walk over the original instruction stream
    computing, for every reachable instruction boundary, the operand
    stack height, the type stack (top first) and the enclosing label
    environment. Heights are [-1] on unreachable boundaries; blocks
    starting there compile to an engine-bug trap (nothing can jump to
    them). Dead stretches are revived at the [End] of a block/if frame
    exactly as in validation, because branches may still target the
    block's end. *)
let analyze (inst : instance) (code : code) :
  int array * value_type list array * frame list array * int =
  let body = code.c_body in
  let n = Array.length body in
  let end_of = code.c_jumps.end_of in
  let ltypes = Array.of_list (code.c_type.params @ code.c_func.Ast.locals) in
  let heights = Array.make (n + 1) (-1) in
  let types_at = Array.make (max n 1) [] in
  let frames_at = Array.make (max n 1) [] in
  let frames = ref [] in
  let h = ref 0 in
  let ts = ref [] in
  let dead = ref false in
  let max_h = ref 0 in
  let arities ft = (List.length ft.params, List.length ft.results) in
  let pop_ts () =
    match !ts with [] -> raise Unsupported | x :: r -> ts := r; x
  in
  let popn k = for _ = 1 to k do ignore (pop_ts ()) done in
  let push t = ts := t :: !ts in
  for pc = 0 to n - 1 do
    if not !dead then begin
      heights.(pc) <- !h;
      types_at.(pc) <- !ts;
      frames_at.(pc) <- !frames;
      if !h > !max_h then max_h := !h
    end;
    (match body.(pc) with
     | Ast.Unreachable -> dead := true
     | Ast.Nop -> ()
     | Ast.Block bt ->
       frames :=
         { f_label = { l_target = end_of.(pc) + 1; l_height = !h; l_ty = bt };
           f_bt = bt; f_ts = !ts; f_entry_dead = !dead; f_loop = false }
         :: !frames
     | Ast.Loop bt ->
       (* a loop label carries no values in the MVP *)
       frames :=
         { f_label = { l_target = pc + 1; l_height = !h; l_ty = None };
           f_bt = bt; f_ts = !ts; f_entry_dead = !dead; f_loop = true }
         :: !frames
     | Ast.If bt ->
       h := !h - 1;
       if not !dead then popn 1;
       frames :=
         { f_label = { l_target = end_of.(pc) + 1; l_height = !h; l_ty = bt };
           f_bt = bt; f_ts = !ts; f_entry_dead = !dead; f_loop = false }
         :: !frames
     | Ast.Else ->
       (match !frames with
        | f :: _ ->
          h := f.f_label.l_height;
          ts := f.f_ts;
          dead := f.f_entry_dead
        | [] -> raise Unsupported)
     | Ast.End ->
       (match !frames with
        | f :: rest ->
          frames := rest;
          if !dead && not f.f_loop then begin
            (* the end can still be reached by branches to the label *)
            h := f.f_label.l_height + bt_arity f.f_bt;
            ts := (match f.f_bt with Some t -> t :: f.f_ts | None -> f.f_ts);
            dead := f.f_entry_dead
          end
          (* a dead loop end stays dead: nothing targets a loop's end *)
        | [] -> raise Unsupported)
     | Ast.Br _ -> dead := true
     | Ast.BrIf _ ->
       h := !h - 1;
       if not !dead then popn 1
     | Ast.BrTable _ ->
       h := !h - 1;
       if not !dead then popn 1;
       dead := true
     | Ast.Return -> dead := true
     | Ast.Call fidx ->
       let ft = func_type_of inst.inst_funcs.(fidx) in
       let np, nr = arities ft in
       h := !h - np + nr;
       if not !dead then begin
         popn np;
         List.iter push ft.results
       end
     | Ast.CallIndirect tidx ->
       let ft = inst.inst_types.(tidx) in
       let np, nr = arities ft in
       h := !h - 1 - np + nr;
       if not !dead then begin
         popn (1 + np);
         List.iter push ft.results
       end
     | Ast.Drop ->
       h := !h - 1;
       if not !dead then popn 1
     | Ast.Select ->
       h := !h - 2;
       if not !dead then begin
         ignore (pop_ts ());
         let t = pop_ts () in
         ignore (pop_ts ());
         push t
       end
     | Ast.LocalGet x ->
       h := !h + 1;
       if not !dead then
         if x < Array.length ltypes then push ltypes.(x) else raise Unsupported
     | Ast.LocalSet _ ->
       h := !h - 1;
       if not !dead then popn 1
     | Ast.LocalTee _ -> ()
     | Ast.GlobalGet x ->
       h := !h + 1;
       if not !dead then push inst.inst_globals.(x).g_type.content
     | Ast.GlobalSet _ ->
       h := !h - 1;
       if not !dead then popn 1
     | Ast.Load op ->
       if not !dead then begin
         ignore (pop_ts ());
         push op.Ast.lty
       end
     | Ast.Store _ ->
       h := !h - 2;
       if not !dead then popn 2
     | Ast.MemorySize ->
       h := !h + 1;
       if not !dead then push I32T
     | Ast.MemoryGrow ->
       if not !dead then begin
         ignore (pop_ts ());
         push I32T
       end
     | Ast.Const v ->
       h := !h + 1;
       if not !dead then push (type_of_value v)
     | Ast.Test _ ->
       if not !dead then begin
         ignore (pop_ts ());
         push I32T
       end
     | Ast.Compare _ ->
       h := !h - 1;
       if not !dead then begin
         popn 2;
         push I32T
       end
     | Ast.Unary _ -> ()
     | Ast.Convert op ->
       if not !dead then begin
         ignore (pop_ts ());
         push (snd (cvt_types op))
       end
     | Ast.Binary _ ->
       h := !h - 1;
       if not !dead then popn 1);
    if not !dead then begin
      if !h < 0 then raise Unsupported;
      (* the two stacks must stay in lock step: a divergence here would
         make the typed-slot codegen write out of bounds *)
      if List.length !ts <> !h then raise Unsupported
    end
  done;
  if not !dead then begin
    heights.(n) <- !h;
    if !h > !max_h then max_h := !h
  end;
  (heights, types_at, frames_at, !max_h)

(** {1 Slot marshalling}

    The boxed/unboxed boundary, used by generic (rare) operators, call
    argument staging, result unpacking, branch value copies and
    returns. i32 slots read/write [ctx.id], f64 slots [ctx.fd], i64
    and f32 slots the boxed instance stack. *)

let read_val (ty : value_type) (s : int) : ectx -> Value.t =
  match ty with
  | I32T -> fun ctx -> Value.I32 (Int32.of_int (Array.unsafe_get ctx.id s))
  | F64T -> fun ctx -> Value.F64 (Array.unsafe_get ctx.fd s)
  | I64T | F32T -> fun ctx -> Array.unsafe_get ctx.st.data (ctx.base + s)

let write_val (ty : value_type) (s : int) : ectx -> Value.t -> unit =
  match ty with
  | I32T ->
    fun ctx v -> Array.unsafe_set ctx.id s (Int32.to_int (Value.as_i32 v))
  | F64T -> fun ctx v -> Array.unsafe_set ctx.fd s (Value.as_f64 v)
  | I64T | F32T -> fun ctx v -> Array.unsafe_set ctx.st.data (ctx.base + s) v

let copy_slot (ty : value_type) ~(src : int) ~(dst : int) : ectx -> unit =
  match ty with
  | I32T ->
    fun ctx -> Array.unsafe_set ctx.id dst (Array.unsafe_get ctx.id src)
  | F64T ->
    fun ctx -> Array.unsafe_set ctx.fd dst (Array.unsafe_get ctx.fd src)
  | I64T | F32T ->
    fun ctx ->
      let d = ctx.st.data in
      Array.unsafe_set d (ctx.base + dst) (Array.unsafe_get d (ctx.base + src))

(** Box an unboxed slot onto the instance stack (call arguments,
    returns); [None] when the slot is already boxed. *)
let box_slot (ty : value_type) (s : int) : (ectx -> unit) option =
  match ty with
  | I32T ->
    Some
      (fun ctx ->
         Array.unsafe_set ctx.st.data (ctx.base + s)
           (Value.I32 (Int32.of_int (Array.unsafe_get ctx.id s))))
  | F64T ->
    Some
      (fun ctx ->
         Array.unsafe_set ctx.st.data (ctx.base + s)
           (Value.F64 (Array.unsafe_get ctx.fd s)))
  | I64T | F32T -> None

(** Unpack a boxed stack slot into the typed scratch array (call
    results); [None] when the slot stays boxed. *)
let unbox_slot (ty : value_type) (s : int) : (ectx -> unit) option =
  match ty with
  | I32T ->
    Some
      (fun ctx ->
         Array.unsafe_set ctx.id s
           (Int32.to_int (Value.as_i32 (Array.unsafe_get ctx.st.data (ctx.base + s)))))
  | F64T ->
    Some
      (fun ctx ->
         Array.unsafe_set ctx.fd s
           (Value.as_f64 (Array.unsafe_get ctx.st.data (ctx.base + s))))
  | I64T | F32T -> None

let rec chain (fs : (ectx -> unit) list) : (ectx -> unit) option =
  match fs with
  | [] -> None
  | [ f ] -> Some f
  | f :: rest ->
    (match chain rest with
     | None -> Some f
     | Some g ->
       Some
         (fun ctx ->
            f ctx;
            g ctx))

(** Compose straight-line operations in execution order in front of the
    terminator, unrolled four per closure. The terminator call stays in
    tail position. *)
let rec seq (ops : (ectx -> unit) list) (k : ectx -> unit) : ectx -> unit =
  match ops with
  | [] -> k
  | [ f1 ] ->
    fun ctx ->
      f1 ctx;
      k ctx
  | [ f1; f2 ] ->
    fun ctx ->
      f1 ctx;
      f2 ctx;
      k ctx
  | [ f1; f2; f3 ] ->
    fun ctx ->
      f1 ctx;
      f2 ctx;
      f3 ctx;
      k ctx
  | f1 :: f2 :: f3 :: f4 :: rest ->
    let k' = seq rest k in
    fun ctx ->
      f1 ctx;
      f2 ctx;
      f3 ctx;
      f4 ctx;
      k' ctx

(** {1 Pass 2: code generation} *)

let engine_bug : ectx -> unit =
 fun _ -> raise (Value.Trap "tier1 reached an unreachable block (engine bug)")

let empty_ints : int array = [||]
let empty_floats : float array = [||]

let compile_exn (inst : instance) (fid : int) : compiled_body =
  let code = inst.inst_code.(fid) in
  let body = code.c_body in
  let xbody = code.c_xbody in
  let run_len = code.c_run_len in
  let end_of = code.c_jumps.end_of in
  let n = Array.length body in
  let results = code.c_type.results in
  let ltypes = Array.of_list (code.c_type.params @ code.c_func.Ast.locals) in
  let nlocals = Array.length ltypes in
  let local_ty x = if x < nlocals then ltypes.(x) else raise Unsupported in
  let want_local ty x = if local_ty x <> ty then raise Unsupported in
  let heights, types_at, frames_at, max_h = analyze inst code in
  (* basic blocks: a block starts at 0, after every control transfer,
     and at every label target (= tier 0's fresh-charge points plus the
     positions branches resolve to) *)
  let is_start = Array.make (n + 1) false in
  is_start.(0) <- true;
  is_start.(n) <- true;
  for pc = 0 to n - 1 do
    (match body.(pc) with
     | Ast.If _ | Ast.Else | Ast.Br _ | Ast.BrIf _ | Ast.BrTable _
     | Ast.Return | Ast.Unreachable ->
       is_start.(pc + 1) <- true
     | _ -> ());
    match body.(pc) with
    | Ast.Block _ | Ast.If _ -> is_start.(end_of.(pc) + 1) <- true
    | Ast.Loop _ ->
      is_start.(pc + 1) <- true;
      is_start.(end_of.(pc) + 1) <- true
    | _ -> ()
  done;
  (* fusion never spans a leader, so no block may start on a fused
     interior; bail to tier 0 if one somehow does *)
  for pc = 0 to n - 1 do
    if is_start.(pc) && xbody.(pc) = XFusedTail then raise Unsupported
  done;
  let block_of = Array.make (n + 1) (-1) in
  let nblocks = ref 0 in
  for pc = 0 to n do
    if is_start.(pc) then begin
      block_of.(pc) <- !nblocks;
      incr nblocks
    end
  done;
  let starts = Array.make !nblocks 0 in
  for pc = n downto 0 do
    if is_start.(pc) then starts.(block_of.(pc)) <- pc
  done;
  let cells : (ectx -> unit) ref array =
    Array.init !nblocks (fun _ -> ref engine_bug)
  in
  (* blocks are compiled in increasing index order, so a back-edge
     (the loop case) can capture the final target closure directly;
     forward and self edges go through the target's cell *)
  let jump_to ~cur (target : int) : ectx -> unit =
    let bi = block_of.(target) in
    if bi < 0 then raise Unsupported;
    if bi < cur then !(cells.(bi))
    else begin
      let cell = cells.(bi) in
      fun ctx -> !cell ctx
    end
  in
  (* returning: box the result (if any) at the frame base and
     materialise the stack size; ends the tail-call chain *)
  let ret_edge ~from_h : ectx -> unit =
    match results with
    | [] ->
      if from_h < 0 then raise Unsupported;
      fun ctx -> ctx.st.size <- ctx.base
    | [ ty ] ->
      let src = from_h - 1 in
      if src < 0 then raise Unsupported;
      (match ty with
       | I32T ->
         fun ctx ->
           Array.unsafe_set ctx.st.data ctx.base
             (Value.I32 (Int32.of_int (Array.unsafe_get ctx.id src)));
           ctx.st.size <- ctx.base + 1
       | F64T ->
         fun ctx ->
           Array.unsafe_set ctx.st.data ctx.base
             (Value.F64 (Array.unsafe_get ctx.fd src));
           ctx.st.size <- ctx.base + 1
       | I64T | F32T ->
         if src = 0 then fun ctx -> ctx.st.size <- ctx.base + 1
         else
           fun ctx ->
             let d = ctx.st.data in
             Array.unsafe_set d ctx.base (Array.unsafe_get d (ctx.base + src));
             ctx.st.size <- ctx.base + 1)
    | _ -> raise Unsupported
  in
  (* a taken branch: copy the carried value down to the label height,
     reset the charge mark, tail-jump to the target block *)
  let label_edge ~cur ~from_h (l : label) : ectx -> unit =
    let jmp = jump_to ~cur l.l_target in
    match l.l_ty with
    | None ->
      if from_h < l.l_height then raise Unsupported;
      fun ctx ->
        ctx.charged <- 0;
        jmp ctx
    | Some ty ->
      let src = from_h - 1
      and dst = l.l_height in
      if src < 0 || dst < 0 || src < dst then raise Unsupported;
      if src = dst then
        fun ctx ->
          ctx.charged <- 0;
          jmp ctx
      else begin
        let cp = copy_slot ty ~src ~dst in
        fun ctx ->
          cp ctx;
          ctx.charged <- 0;
          jmp ctx
      end
  in
  (* relative label [k] at a branch site: label if in range, else the
     function return (tier 0's [branch] does the same) *)
  let branch_edge ~cur ~from_h frames k : ectx -> unit =
    match List.nth_opt frames k with
    | Some f -> label_edge ~cur ~from_h f.f_label
    | None -> ret_edge ~from_h
  in
  let with_mem (k : Memory.t -> ectx -> unit) : ectx -> unit =
    match inst.inst_memory with
    | Some m -> k m
    | None -> fun _ -> raise (Value.Trap "no memory")
  in
  let compile_block cur : ectx -> unit =
    let sb = starts.(cur) in
    if sb = n then
      if heights.(n) >= 0 then ret_edge ~from_h:heights.(n) else engine_bug
    else if heights.(sb) < 0 then engine_bug
    else begin
      let eb =
        let i = ref (sb + 1) in
        while not is_start.(!i) do
          incr i
        done;
        !i
      in
      let h = ref heights.(sb) in
      let ops : (ectx -> unit) list ref = ref [] in
      let term : (ectx -> unit) option ref = ref None in
      let emit f = ops := f :: !ops in
      let finish t = term := Some t in
      let pc = ref sb in
      while Option.is_none !term && !pc < eb do
        let p = !pc in
        if heights.(p) >= 0 && heights.(p) <> !h then raise Unsupported;
        let step len = pc := p + len in
        (match xbody.(p) with
         (* no-ops at run time: all control bookkeeping is static *)
         | XNop | XBlock _ | XLoop | XEnd -> step 1
         | XDrop ->
           h := !h - 1;
           step 1
         | XSelect ->
           let s = !h - 3 in
           let ty =
             match types_at.(p) with
             | _cond :: ty :: _ -> ty
             | _ -> raise Unsupported
           in
           (match ty with
            | I32T ->
              emit (fun ctx ->
                let id = ctx.id in
                if Array.unsafe_get id (s + 2) = 0 then
                  Array.unsafe_set id s (Array.unsafe_get id (s + 1)))
            | F64T ->
              emit (fun ctx ->
                if Array.unsafe_get ctx.id (s + 2) = 0 then
                  Array.unsafe_set ctx.fd s (Array.unsafe_get ctx.fd (s + 1)))
            | I64T | F32T ->
              emit (fun ctx ->
                if Array.unsafe_get ctx.id (s + 2) = 0 then begin
                  let d = ctx.st.data in
                  let b = ctx.base + s in
                  Array.unsafe_set d b (Array.unsafe_get d (b + 1))
                end));
           h := !h - 2;
           step 1
         | XLocalGet x ->
           let s = !h in
           (match local_ty x with
            | I32T ->
              emit (fun ctx ->
                Array.unsafe_set ctx.id s (Array.unsafe_get ctx.il x))
            | F64T ->
              emit (fun ctx ->
                Array.unsafe_set ctx.fd s (Array.unsafe_get ctx.fl x))
            | I64T | F32T ->
              emit (fun ctx ->
                Array.unsafe_set ctx.st.data (ctx.base + s)
                  (Array.unsafe_get ctx.locals x)));
           h := !h + 1;
           step 1
         | XLocalSet x ->
           let s = !h - 1 in
           (match local_ty x with
            | I32T ->
              emit (fun ctx ->
                Array.unsafe_set ctx.il x (Array.unsafe_get ctx.id s))
            | F64T ->
              emit (fun ctx ->
                Array.unsafe_set ctx.fl x (Array.unsafe_get ctx.fd s))
            | I64T | F32T ->
              emit (fun ctx ->
                Array.unsafe_set ctx.locals x
                  (Array.unsafe_get ctx.st.data (ctx.base + s))));
           h := !h - 1;
           step 1
         | XLocalTee x ->
           let s = !h - 1 in
           (match local_ty x with
            | I32T ->
              emit (fun ctx ->
                Array.unsafe_set ctx.il x (Array.unsafe_get ctx.id s))
            | F64T ->
              emit (fun ctx ->
                Array.unsafe_set ctx.fl x (Array.unsafe_get ctx.fd s))
            | I64T | F32T ->
              emit (fun ctx ->
                Array.unsafe_set ctx.locals x
                  (Array.unsafe_get ctx.st.data (ctx.base + s))));
           step 1
         | XGlobalGet x ->
           let g = inst.inst_globals.(x) in
           let s = !h in
           (match g.g_type.content with
            | I32T ->
              emit (fun ctx ->
                Array.unsafe_set ctx.id s (Int32.to_int (Value.as_i32 g.g_value)))
            | F64T ->
              emit (fun ctx ->
                Array.unsafe_set ctx.fd s (Value.as_f64 g.g_value))
            | I64T | F32T ->
              emit (fun ctx ->
                Array.unsafe_set ctx.st.data (ctx.base + s) g.g_value));
           h := !h + 1;
           step 1
         | XGlobalSet x ->
           let g = inst.inst_globals.(x) in
           let s = !h - 1 in
           (match g.g_type.content with
            | I32T ->
              emit (fun ctx ->
                g.g_value <- Value.I32 (Int32.of_int (Array.unsafe_get ctx.id s)))
            | F64T ->
              emit (fun ctx -> g.g_value <- Value.F64 (Array.unsafe_get ctx.fd s))
            | I64T | F32T ->
              emit (fun ctx ->
                g.g_value <- Array.unsafe_get ctx.st.data (ctx.base + s)));
           h := !h - 1;
           step 1
         | XConst v ->
           let s = !h in
           (match v with
            | Value.I32 c ->
              let ci = Int32.to_int c in
              emit (fun ctx -> Array.unsafe_set ctx.id s ci)
            | Value.F64 f -> emit (fun ctx -> Array.unsafe_set ctx.fd s f)
            | Value.I64 _ | Value.F32 _ ->
              emit (fun ctx -> Array.unsafe_set ctx.st.data (ctx.base + s) v));
           h := !h + 1;
           step 1
         | XI32Load off ->
           let s = !h - 1 in
           emit
             (with_mem (fun m ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (Memory.load_i32_u m (Array.unsafe_get id s land 0xFFFFFFFF) off)));
           step 1
         | XI64Load off ->
           let s = !h - 1 in
           emit
             (with_mem (fun m ctx ->
                let addr = Int32.of_int (Array.unsafe_get ctx.id s) in
                Array.unsafe_set ctx.st.data (ctx.base + s)
                  (Value.I64 (Memory.load_i64 m addr off))));
           step 1
         | XF32Load off ->
           let s = !h - 1 in
           emit
             (with_mem (fun m ctx ->
                let addr = Int32.of_int (Array.unsafe_get ctx.id s) in
                Array.unsafe_set ctx.st.data (ctx.base + s)
                  (Value.F32 (Memory.load_f32_bits m addr off))));
           step 1
         | XF64Load off ->
           let s = !h - 1 in
           emit
             (with_mem (fun m ctx ->
                Array.unsafe_set ctx.fd s
                  (Memory.load_f64_u m
                     (Array.unsafe_get ctx.id s land 0xFFFFFFFF)
                     off)));
           step 1
         | XI32Store off ->
           let s = !h - 2 in
           emit
             (with_mem (fun m ctx ->
                let id = ctx.id in
                Memory.store_i32_u m
                  (Array.unsafe_get id s land 0xFFFFFFFF)
                  off
                  (Array.unsafe_get id (s + 1))));
           h := !h - 2;
           step 1
         | XI64Store off ->
           let s = !h - 2 in
           emit
             (with_mem (fun m ctx ->
                let addr = Int32.of_int (Array.unsafe_get ctx.id s) in
                Memory.store_i64 m addr off
                  (Value.as_i64 (Array.unsafe_get ctx.st.data (ctx.base + s + 1)))));
           h := !h - 2;
           step 1
         | XF32Store off ->
           let s = !h - 2 in
           emit
             (with_mem (fun m ctx ->
                let addr = Int32.of_int (Array.unsafe_get ctx.id s) in
                Memory.store_f32_bits m addr off
                  (Value.as_f32_bits
                     (Array.unsafe_get ctx.st.data (ctx.base + s + 1)))));
           h := !h - 2;
           step 1
         | XF64Store off ->
           let s = !h - 2 in
           emit
             (with_mem (fun m ctx ->
                Memory.store_f64_u m
                  (Array.unsafe_get ctx.id s land 0xFFFFFFFF)
                  off
                  (Array.unsafe_get ctx.fd (s + 1))));
           h := !h - 2;
           step 1
         | XLoadGen op ->
           let s = !h - 1 in
           (match op.Ast.lty with
            | I32T ->
              emit
                (with_mem (fun m ctx ->
                   let id = ctx.id in
                   let addr = Int32.of_int (Array.unsafe_get id s) in
                   Array.unsafe_set id s
                     (Int32.to_int (Value.as_i32 (Memory.load m op addr)))))
            | F64T ->
              emit
                (with_mem (fun m ctx ->
                   let addr = Int32.of_int (Array.unsafe_get ctx.id s) in
                   Array.unsafe_set ctx.fd s (Value.as_f64 (Memory.load m op addr))))
            | I64T | F32T ->
              emit
                (with_mem (fun m ctx ->
                   let addr = Int32.of_int (Array.unsafe_get ctx.id s) in
                   Array.unsafe_set ctx.st.data (ctx.base + s)
                     (Memory.load m op addr))));
           step 1
         | XStoreGen op ->
           let s = !h - 2 in
           (match op.Ast.sty with
            | I32T ->
              emit
                (with_mem (fun m ctx ->
                   let id = ctx.id in
                   Memory.store m op
                     (Int32.of_int (Array.unsafe_get id s))
                     (Value.I32 (Int32.of_int (Array.unsafe_get id (s + 1))))))
            | F64T ->
              emit
                (with_mem (fun m ctx ->
                   Memory.store m op
                     (Int32.of_int (Array.unsafe_get ctx.id s))
                     (Value.F64 (Array.unsafe_get ctx.fd (s + 1)))))
            | I64T | F32T ->
              emit
                (with_mem (fun m ctx ->
                   Memory.store m op
                     (Int32.of_int (Array.unsafe_get ctx.id s))
                     (Array.unsafe_get ctx.st.data (ctx.base + s + 1)))));
           h := !h - 2;
           step 1
         | XMemorySize ->
           let s = !h in
           emit
             (with_mem (fun m ctx ->
                Array.unsafe_set ctx.id s (Memory.size_pages m)));
           h := !h + 1;
           step 1
         | XMemoryGrow ->
           let s = !h - 1 in
           emit
             (with_mem (fun m ctx ->
                let id = ctx.id in
                let old =
                  match inst.inst_gov with
                  | None -> Memory.grow m (Array.unsafe_get id s)
                  | Some g -> Governor.governed_grow g m (Array.unsafe_get id s)
                in
                Array.unsafe_set id s old));
           step 1
         | XI32Eqz ->
           let s = !h - 1 in
           emit (fun ctx ->
             let id = ctx.id in
             Array.unsafe_set id s (if Array.unsafe_get id s = 0 then 1 else 0));
           step 1
         | XI32Bin op ->
           let s = !h - 2 in
           (match op with
            | Ast.Add ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (Eval_numeric.norm32
                     (Array.unsafe_get id s + Array.unsafe_get id (s + 1))))
            | Ast.Sub ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (Eval_numeric.norm32
                     (Array.unsafe_get id s - Array.unsafe_get id (s + 1))))
            | Ast.Mul ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (Eval_numeric.norm32
                     (Array.unsafe_get id s * Array.unsafe_get id (s + 1))))
            | Ast.And ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (Array.unsafe_get id s land Array.unsafe_get id (s + 1)))
            | Ast.Or ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (Array.unsafe_get id s lor Array.unsafe_get id (s + 1)))
            | Ast.Xor ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (Array.unsafe_get id s lxor Array.unsafe_get id (s + 1)))
            | Ast.Shl ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (Eval_numeric.norm32
                     (Array.unsafe_get id s lsl (Array.unsafe_get id (s + 1) land 31))))
            | Ast.ShrS ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (Array.unsafe_get id s asr (Array.unsafe_get id (s + 1) land 31)))
            | Ast.ShrU ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (Eval_numeric.norm32
                     ((Array.unsafe_get id s land 0xFFFFFFFF)
                      lsr (Array.unsafe_get id (s + 1) land 31))))
            | Ast.DivS | Ast.DivU | Ast.RemS | Ast.RemU | Ast.Rotl | Ast.Rotr ->
              let f = Eval_numeric.ibinop_i32_int op in
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (f (Array.unsafe_get id s) (Array.unsafe_get id (s + 1)))));
           h := !h - 1;
           step 1
         | XI32Rel r ->
           let s = !h - 2 in
           (match r with
            | Ast.Eq ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (if Array.unsafe_get id s = Array.unsafe_get id (s + 1) then 1
                   else 0))
            | Ast.Ne ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (if Array.unsafe_get id s <> Array.unsafe_get id (s + 1) then 1
                   else 0))
            | Ast.LtS ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (if Array.unsafe_get id s < Array.unsafe_get id (s + 1) then 1
                   else 0))
            | Ast.LtU ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (if
                     Array.unsafe_get id s land 0xFFFFFFFF
                     < Array.unsafe_get id (s + 1) land 0xFFFFFFFF
                   then 1
                   else 0))
            | Ast.GtS ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (if Array.unsafe_get id s > Array.unsafe_get id (s + 1) then 1
                   else 0))
            | Ast.GtU ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (if
                     Array.unsafe_get id s land 0xFFFFFFFF
                     > Array.unsafe_get id (s + 1) land 0xFFFFFFFF
                   then 1
                   else 0))
            | Ast.LeS ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (if Array.unsafe_get id s <= Array.unsafe_get id (s + 1) then 1
                   else 0))
            | Ast.LeU ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (if
                     Array.unsafe_get id s land 0xFFFFFFFF
                     <= Array.unsafe_get id (s + 1) land 0xFFFFFFFF
                   then 1
                   else 0))
            | Ast.GeS ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (if Array.unsafe_get id s >= Array.unsafe_get id (s + 1) then 1
                   else 0))
            | Ast.GeU ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (if
                     Array.unsafe_get id s land 0xFFFFFFFF
                     >= Array.unsafe_get id (s + 1) land 0xFFFFFFFF
                   then 1
                   else 0)));
           h := !h - 1;
           step 1
         | XI64Bin op ->
           let f = Eval_numeric.ibinop_i64_fn op in
           let s = !h - 2 in
           emit (fun ctx ->
             let d = ctx.st.data in
             let b = ctx.base + s in
             Array.unsafe_set d b
               (Value.I64
                  (f
                     (Value.as_i64 (Array.unsafe_get d b))
                     (Value.as_i64 (Array.unsafe_get d (b + 1))))));
           h := !h - 1;
           step 1
         | XI64Rel r ->
           let f = Eval_numeric.irelop_i64_fn r in
           let s = !h - 2 in
           emit (fun ctx ->
             let d = ctx.st.data in
             let b = ctx.base + s in
             Array.unsafe_set ctx.id s
               (if
                  f
                    (Value.as_i64 (Array.unsafe_get d b))
                    (Value.as_i64 (Array.unsafe_get d (b + 1)))
                then 1
                else 0));
           h := !h - 1;
           step 1
         | XF64Bin op ->
           let s = !h - 2 in
           (match op with
            | Ast.FAdd ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s
                  (Array.unsafe_get fd s +. Array.unsafe_get fd (s + 1)))
            | Ast.FSub ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s
                  (Array.unsafe_get fd s -. Array.unsafe_get fd (s + 1)))
            | Ast.FMul ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s
                  (Array.unsafe_get fd s *. Array.unsafe_get fd (s + 1)))
            | Ast.FDiv ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s
                  (Array.unsafe_get fd s /. Array.unsafe_get fd (s + 1)))
            | Ast.Min | Ast.Max | Ast.CopySign ->
              let f = Eval_numeric.fbinop_fn op in
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s
                  (f (Array.unsafe_get fd s) (Array.unsafe_get fd (s + 1)))));
           h := !h - 1;
           step 1
         | XF64Rel r ->
           let s = !h - 2 in
           (match r with
            | Ast.FEq ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set ctx.id s
                  (if Array.unsafe_get fd s = Array.unsafe_get fd (s + 1) then 1
                   else 0))
            | Ast.FNe ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set ctx.id s
                  (if Array.unsafe_get fd s <> Array.unsafe_get fd (s + 1) then 1
                   else 0))
            | Ast.FLt ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set ctx.id s
                  (if Array.unsafe_get fd s < Array.unsafe_get fd (s + 1) then 1
                   else 0))
            | Ast.FGt ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set ctx.id s
                  (if Array.unsafe_get fd s > Array.unsafe_get fd (s + 1) then 1
                   else 0))
            | Ast.FLe ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set ctx.id s
                  (if Array.unsafe_get fd s <= Array.unsafe_get fd (s + 1) then 1
                   else 0))
            | Ast.FGe ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set ctx.id s
                  (if Array.unsafe_get fd s >= Array.unsafe_get fd (s + 1) then 1
                   else 0)));
           h := !h - 1;
           step 1
         | XF64Un u ->
           let s = !h - 1 in
           (match u with
            | Ast.Abs ->
              emit (fun ctx ->
                Array.unsafe_set ctx.fd s (abs_float (Array.unsafe_get ctx.fd s)))
            | Ast.Neg ->
              emit (fun ctx ->
                Array.unsafe_set ctx.fd s (-.Array.unsafe_get ctx.fd s))
            | Ast.Sqrt ->
              emit (fun ctx ->
                Array.unsafe_set ctx.fd s (sqrt (Array.unsafe_get ctx.fd s)))
            | Ast.Ceil | Ast.Floor | Ast.Trunc | Ast.Nearest ->
              let f = Eval_numeric.funop_impl u in
              emit (fun ctx ->
                Array.unsafe_set ctx.fd s (f (Array.unsafe_get ctx.fd s))));
           step 1
         | XF64ConvertI32S ->
           let s = !h - 1 in
           emit (fun ctx ->
             Array.unsafe_set ctx.fd s (float_of_int (Array.unsafe_get ctx.id s)));
           step 1
         | XI32TruncF64S ->
           let s = !h - 1 in
           emit (fun ctx ->
             Array.unsafe_set ctx.id s
               (Int32.to_int (Value.Cvt.i32_trunc_s (Array.unsafe_get ctx.fd s))));
           step 1
         | XTestGen op ->
           let s = !h - 1 in
           (match op with
            | Ast.IEqz S32 ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s (if Array.unsafe_get id s = 0 then 1 else 0))
            | Ast.IEqz S64 ->
              emit (fun ctx ->
                Array.unsafe_set ctx.id s
                  (if
                     Int64.equal
                       (Value.as_i64 (Array.unsafe_get ctx.st.data (ctx.base + s)))
                       0L
                   then 1
                   else 0)));
           step 1
         | XCompareGen op ->
           let s = !h - 2 in
           (match op with
            | Ast.IRel (S32, r) ->
              let f = Eval_numeric.irelop_i32_int r in
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (if f (Array.unsafe_get id s) (Array.unsafe_get id (s + 1))
                   then 1
                   else 0))
            | Ast.IRel (S64, r) ->
              let f = Eval_numeric.irelop_i64_fn r in
              emit (fun ctx ->
                let d = ctx.st.data in
                let b = ctx.base + s in
                Array.unsafe_set ctx.id s
                  (if
                     f
                       (Value.as_i64 (Array.unsafe_get d b))
                       (Value.as_i64 (Array.unsafe_get d (b + 1)))
                   then 1
                   else 0))
            | Ast.FRel (SF64, r) ->
              let f = Eval_numeric.frelop_fn r in
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set ctx.id s
                  (if f (Array.unsafe_get fd s) (Array.unsafe_get fd (s + 1))
                   then 1
                   else 0))
            | Ast.FRel (SF32, _) ->
              emit (fun ctx ->
                let d = ctx.st.data in
                let b = ctx.base + s in
                Array.unsafe_set ctx.id s
                  (Int32.to_int
                     (Value.as_i32
                        (Eval_numeric.eval_relop op (Array.unsafe_get d b)
                           (Array.unsafe_get d (b + 1)))))));
           h := !h - 1;
           step 1
         | XUnaryGen op ->
           let s = !h - 1 in
           (match op with
            | Ast.IUn (S32, _) ->
              emit (fun ctx ->
                let v =
                  Eval_numeric.eval_unop op
                    (Value.I32 (Int32.of_int (Array.unsafe_get ctx.id s)))
                in
                Array.unsafe_set ctx.id s (Int32.to_int (Value.as_i32 v)))
            | Ast.FUn (SF64, u) ->
              let f = Eval_numeric.funop_impl u in
              emit (fun ctx ->
                Array.unsafe_set ctx.fd s (f (Array.unsafe_get ctx.fd s)))
            | Ast.IUn (S64, _) | Ast.FUn (SF32, _) ->
              emit (fun ctx ->
                let d = ctx.st.data in
                let b = ctx.base + s in
                Array.unsafe_set d b
                  (Eval_numeric.eval_unop op (Array.unsafe_get d b))));
           step 1
         | XBinaryGen op ->
           let s = !h - 2 in
           (match op with
            | Ast.IBin (S32, bop) ->
              let f = Eval_numeric.ibinop_i32_int bop in
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (f (Array.unsafe_get id s) (Array.unsafe_get id (s + 1))))
            | Ast.IBin (S64, bop) ->
              let f = Eval_numeric.ibinop_i64_fn bop in
              emit (fun ctx ->
                let d = ctx.st.data in
                let b = ctx.base + s in
                Array.unsafe_set d b
                  (Value.I64
                     (f
                        (Value.as_i64 (Array.unsafe_get d b))
                        (Value.as_i64 (Array.unsafe_get d (b + 1))))))
            | Ast.FBin (SF64, bop) ->
              let f = Eval_numeric.fbinop_fn bop in
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s
                  (f (Array.unsafe_get fd s) (Array.unsafe_get fd (s + 1))))
            | Ast.FBin (SF32, _) ->
              emit (fun ctx ->
                let d = ctx.st.data in
                let b = ctx.base + s in
                Array.unsafe_set d b
                  (Eval_numeric.eval_binop op (Array.unsafe_get d b)
                     (Array.unsafe_get d (b + 1)))));
           h := !h - 1;
           step 1
         | XConvertGen op ->
           let s = !h - 1 in
           let src, dst = cvt_types op in
           let rv = read_val src s
           and wv = write_val dst s in
           emit (fun ctx -> wv ctx (Eval_numeric.eval_cvtop op (rv ctx)));
           step 1
         | XCall fidx ->
           (* box the unboxed arguments, materialise the stack size,
              re-enter the engine, unpack the results; the callee may
              be tier 0, tier 1 or a host function *)
           let callee = inst.inst_funcs.(fidx) in
           let ft = func_type_of callee in
           let np = List.length ft.params
           and nr = List.length ft.results in
           let hh = !h in
           let abase = hh - np in
           if abase < 0 then raise Unsupported;
           let pre =
             chain
               (List.concat
                  (List.mapi
                     (fun j ty ->
                        match box_slot ty (abase + j) with
                        | Some f -> [ f ]
                        | None -> [])
                     ft.params))
           and post =
             chain
               (List.concat
                  (List.mapi
                     (fun r ty ->
                        match unbox_slot ty (abase + r) with
                        | Some f -> [ f ]
                        | None -> [])
                     ft.results))
           in
           let invoke : ectx -> unit =
             match callee with
             | Wasm_func (j, ci) ->
               fun ctx ->
                 ctx.st.size <- ctx.base + hh;
                 call_wasm ci j ctx.st
             | Host_func hf ->
               fun ctx ->
                 ctx.st.size <- ctx.base + hh;
                 call_host inst hf ctx.st
           in
           (match (pre, post) with
            | None, None -> emit invoke
            | Some f, None ->
              emit (fun ctx ->
                f ctx;
                invoke ctx)
            | None, Some g ->
              emit (fun ctx ->
                invoke ctx;
                g ctx)
            | Some f, Some g ->
              emit (fun ctx ->
                f ctx;
                invoke ctx;
                g ctx));
           h := hh - np + nr;
           step 1
         | XCallIndirect tidx ->
           let expected = inst.inst_types.(tidx) in
           let np = List.length expected.params
           and nr = List.length expected.results in
           let hh = !h in
           let abase = hh - 1 - np in
           if abase < 0 then raise Unsupported;
           let si = hh - 1 in
           (match inst.inst_table with
            | None -> emit (fun _ -> raise (Value.Trap "no table"))
            | Some table ->
              let pre =
                chain
                  (List.concat
                     (List.mapi
                        (fun j ty ->
                           match box_slot ty (abase + j) with
                           | Some f -> [ f ]
                           | None -> [])
                        expected.params))
              and post =
                chain
                  (List.concat
                     (List.mapi
                        (fun r ty ->
                           match unbox_slot ty (abase + r) with
                           | Some f -> [ f ]
                           | None -> [])
                        expected.results))
              in
              let invoke ctx =
                let st = ctx.st in
                let i = Array.unsafe_get ctx.id si land 0xFFFFFFFF in
                st.size <- ctx.base + si;
                let elems = table.t_elems in
                if i >= Array.length elems then
                  raise (Value.Trap "undefined element");
                match Array.unsafe_get elems i with
                | None -> raise (Value.Trap "uninitialized element")
                | Some callee ->
                  if not (equal_func_type (func_type_of callee) expected) then
                    raise (Value.Trap "indirect call type mismatch");
                  (match callee with
                   | Wasm_func (j, ci) -> call_wasm ci j st
                   | Host_func hf -> call_host inst hf st)
              in
              (match (pre, post) with
               | None, None -> emit invoke
               | Some f, None ->
                 emit (fun ctx ->
                   f ctx;
                   invoke ctx)
               | None, Some g ->
                 emit (fun ctx ->
                   invoke ctx;
                   g ctx)
               | Some f, Some g ->
                 emit (fun ctx ->
                   f ctx;
                   invoke ctx;
                   g ctx)));
           h := hh - 1 - np + nr;
           step 1
         (* fused superinstructions (straight-line forms) *)
         | XI32BinLL (op, a, b) ->
           want_local I32T a;
           want_local I32T b;
           let s = !h in
           (match op with
            | Ast.Add ->
              emit (fun ctx ->
                let il = ctx.il in
                Array.unsafe_set ctx.id s
                  (Eval_numeric.norm32
                     (Array.unsafe_get il a + Array.unsafe_get il b)))
            | _ ->
              let f = Eval_numeric.ibinop_i32_int op in
              emit (fun ctx ->
                let il = ctx.il in
                Array.unsafe_set ctx.id s
                  (f (Array.unsafe_get il a) (Array.unsafe_get il b))));
           h := !h + 1;
           step 3
         | XI32BinLC (op, a, c) ->
           want_local I32T a;
           let ci = Int32.to_int c in
           let s = !h in
           (match op with
            | Ast.Add ->
              emit (fun ctx ->
                Array.unsafe_set ctx.id s
                  (Eval_numeric.norm32 (Array.unsafe_get ctx.il a + ci)))
            | _ ->
              let f = Eval_numeric.ibinop_i32_int op in
              emit (fun ctx ->
                Array.unsafe_set ctx.id s (f (Array.unsafe_get ctx.il a) ci)));
           h := !h + 1;
           step 3
         | XI32BinSL (op, b) ->
           want_local I32T b;
           let s = !h - 1 in
           (match op with
            | Ast.Add ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (Eval_numeric.norm32
                     (Array.unsafe_get id s + Array.unsafe_get ctx.il b)))
            | _ ->
              let f = Eval_numeric.ibinop_i32_int op in
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (f (Array.unsafe_get id s) (Array.unsafe_get ctx.il b))));
           step 2
         | XI32BinSC (op, c) ->
           let ci = Int32.to_int c in
           let s = !h - 1 in
           (match op with
            | Ast.Add ->
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s
                  (Eval_numeric.norm32 (Array.unsafe_get id s + ci)))
            | _ ->
              let f = Eval_numeric.ibinop_i32_int op in
              emit (fun ctx ->
                let id = ctx.id in
                Array.unsafe_set id s (f (Array.unsafe_get id s) ci)));
           step 2
         | XF64BinLL (op, a, b) ->
           want_local F64T a;
           want_local F64T b;
           let s = !h in
           (match op with
            | Ast.FAdd ->
              emit (fun ctx ->
                let fl = ctx.fl in
                Array.unsafe_set ctx.fd s
                  (Array.unsafe_get fl a +. Array.unsafe_get fl b))
            | Ast.FSub ->
              emit (fun ctx ->
                let fl = ctx.fl in
                Array.unsafe_set ctx.fd s
                  (Array.unsafe_get fl a -. Array.unsafe_get fl b))
            | Ast.FMul ->
              emit (fun ctx ->
                let fl = ctx.fl in
                Array.unsafe_set ctx.fd s
                  (Array.unsafe_get fl a *. Array.unsafe_get fl b))
            | Ast.FDiv ->
              emit (fun ctx ->
                let fl = ctx.fl in
                Array.unsafe_set ctx.fd s
                  (Array.unsafe_get fl a /. Array.unsafe_get fl b))
            | Ast.Min | Ast.Max | Ast.CopySign ->
              let f = Eval_numeric.fbinop_fn op in
              emit (fun ctx ->
                let fl = ctx.fl in
                Array.unsafe_set ctx.fd s
                  (f (Array.unsafe_get fl a) (Array.unsafe_get fl b))));
           h := !h + 1;
           step 3
         | XF64BinSL (op, b) ->
           want_local F64T b;
           let s = !h - 1 in
           (match op with
            | Ast.FAdd ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s
                  (Array.unsafe_get fd s +. Array.unsafe_get ctx.fl b))
            | Ast.FSub ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s
                  (Array.unsafe_get fd s -. Array.unsafe_get ctx.fl b))
            | Ast.FMul ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s
                  (Array.unsafe_get fd s *. Array.unsafe_get ctx.fl b))
            | Ast.FDiv ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s
                  (Array.unsafe_get fd s /. Array.unsafe_get ctx.fl b))
            | Ast.Min | Ast.Max | Ast.CopySign ->
              let f = Eval_numeric.fbinop_fn op in
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s
                  (f (Array.unsafe_get fd s) (Array.unsafe_get ctx.fl b))));
           step 2
         | XF64BinSC (op, c) ->
           let s = !h - 1 in
           (match op with
            | Ast.FAdd ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s (Array.unsafe_get fd s +. c))
            | Ast.FSub ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s (Array.unsafe_get fd s -. c))
            | Ast.FMul ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s (Array.unsafe_get fd s *. c))
            | Ast.FDiv ->
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s (Array.unsafe_get fd s /. c))
            | Ast.Min | Ast.Max | Ast.CopySign ->
              let f = Eval_numeric.fbinop_fn op in
              emit (fun ctx ->
                let fd = ctx.fd in
                Array.unsafe_set fd s (f (Array.unsafe_get fd s) c)));
           step 2
         | XIncrL (x, c) ->
           want_local I32T x;
           let ci = Int32.to_int c in
           emit (fun ctx ->
             let il = ctx.il in
             Array.unsafe_set il x
               (Eval_numeric.norm32 (Array.unsafe_get il x + ci)));
           step 4
         | XI32LoadScaled (c, off) ->
           let ci = Int32.to_int c in
           let s = !h - 2 in
           emit
             (with_mem (fun m ctx ->
                let id = ctx.id in
                let addr =
                  (Array.unsafe_get id s + (Array.unsafe_get id (s + 1) * ci))
                  land 0xFFFFFFFF
                in
                Array.unsafe_set id s (Memory.load_i32_u m addr off)));
           h := !h - 1;
           step 4
         | XF64LoadScaled (c, off) ->
           let ci = Int32.to_int c in
           let s = !h - 2 in
           emit
             (with_mem (fun m ctx ->
                let id = ctx.id in
                let addr =
                  (Array.unsafe_get id s + (Array.unsafe_get id (s + 1) * ci))
                  land 0xFFFFFFFF
                in
                Array.unsafe_set ctx.fd s (Memory.load_f64_u m addr off)));
           h := !h - 1;
           step 4
         | XI32LoadL (a, off) ->
           want_local I32T a;
           let s = !h in
           emit
             (with_mem (fun m ctx ->
                Array.unsafe_set ctx.id s
                  (Memory.load_i32_u m
                     (Array.unsafe_get ctx.il a land 0xFFFFFFFF)
                     off)));
           h := !h + 1;
           step 2
         | XF64LoadL (a, off) ->
           want_local I32T a;
           let s = !h in
           emit
             (with_mem (fun m ctx ->
                Array.unsafe_set ctx.fd s
                  (Memory.load_f64_u m
                     (Array.unsafe_get ctx.il a land 0xFFFFFFFF)
                     off)));
           h := !h + 1;
           step 2
         (* terminators: every control transfer ends the block *)
         | XUnreachable ->
           finish (fun _ -> raise (Value.Trap "unreachable executed"))
         | XIf (end_target, larity) ->
           if larity <> 0 then raise Unsupported;
           let s = !h - 1 in
           let then_edge = jump_to ~cur (p + 1)
           and else_edge = jump_to ~cur end_target in
           finish (fun ctx ->
             if Array.unsafe_get ctx.id s = 0 then begin
               ctx.charged <- 0;
               else_edge ctx
             end
             else then_edge ctx)
         | XIfElse (else_target, _, _) ->
           let s = !h - 1 in
           let then_edge = jump_to ~cur (p + 1)
           and else_edge = jump_to ~cur else_target in
           finish (fun ctx ->
             if Array.unsafe_get ctx.id s = 0 then begin
               ctx.charged <- 0;
               else_edge ctx
             end
             else then_edge ctx)
         | XElse end_target ->
           let edge = jump_to ~cur end_target in
           finish (fun ctx ->
             ctx.charged <- 0;
             edge ctx)
         | XBr k -> finish (branch_edge ~cur ~from_h:!h frames_at.(p) k)
         | XBrIf k ->
           let s = !h - 1 in
           let taken = branch_edge ~cur ~from_h:(!h - 1) frames_at.(p) k in
           let next = jump_to ~cur (p + 1) in
           finish (fun ctx ->
             if Array.unsafe_get ctx.id s = 0 then next ctx else taken ctx)
         | XBrTable tbl ->
           let s = !h - 1 in
           let from_h = !h - 1 in
           let edges =
             Array.map (fun k -> branch_edge ~cur ~from_h frames_at.(p) k) tbl
           in
           let last = Array.length tbl - 1 in
           finish (fun ctx ->
             let i = Array.unsafe_get ctx.id s land 0xFFFFFFFF in
             (if i < last then Array.unsafe_get edges i
              else Array.unsafe_get edges last)
               ctx)
         | XReturn -> finish (ret_edge ~from_h:!h)
         | XBrIfRelLL (r, a, b, k) ->
           want_local I32T a;
           want_local I32T b;
           let taken = branch_edge ~cur ~from_h:!h frames_at.(p) k in
           let next = jump_to ~cur (p + 4) in
           (* the loop-controlling comparison: every relop inlined so
              the back-edge test costs no closure call *)
           (match r with
            | Ast.Eq ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a = Array.unsafe_get ctx.il b then
                  taken ctx
                else next ctx)
            | Ast.Ne ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a <> Array.unsafe_get ctx.il b then
                  taken ctx
                else next ctx)
            | Ast.LtS ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a < Array.unsafe_get ctx.il b then
                  taken ctx
                else next ctx)
            | Ast.LtU ->
              finish (fun ctx ->
                if
                  Array.unsafe_get ctx.il a land 0xFFFFFFFF
                  < Array.unsafe_get ctx.il b land 0xFFFFFFFF
                then taken ctx
                else next ctx)
            | Ast.GtS ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a > Array.unsafe_get ctx.il b then
                  taken ctx
                else next ctx)
            | Ast.GtU ->
              finish (fun ctx ->
                if
                  Array.unsafe_get ctx.il a land 0xFFFFFFFF
                  > Array.unsafe_get ctx.il b land 0xFFFFFFFF
                then taken ctx
                else next ctx)
            | Ast.LeS ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a <= Array.unsafe_get ctx.il b then
                  taken ctx
                else next ctx)
            | Ast.LeU ->
              finish (fun ctx ->
                if
                  Array.unsafe_get ctx.il a land 0xFFFFFFFF
                  <= Array.unsafe_get ctx.il b land 0xFFFFFFFF
                then taken ctx
                else next ctx)
            | Ast.GeS ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a >= Array.unsafe_get ctx.il b then
                  taken ctx
                else next ctx)
            | Ast.GeU ->
              finish (fun ctx ->
                if
                  Array.unsafe_get ctx.il a land 0xFFFFFFFF
                  >= Array.unsafe_get ctx.il b land 0xFFFFFFFF
                then taken ctx
                else next ctx))
         | XBrIfRelLC (r, a, c, k) ->
           want_local I32T a;
           let ci = Int32.to_int c in
           let cu = ci land 0xFFFFFFFF in
           let taken = branch_edge ~cur ~from_h:!h frames_at.(p) k in
           let next = jump_to ~cur (p + 4) in
           (match r with
            | Ast.Eq ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a = ci then taken ctx else next ctx)
            | Ast.Ne ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a <> ci then taken ctx else next ctx)
            | Ast.LtS ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a < ci then taken ctx else next ctx)
            | Ast.LtU ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a land 0xFFFFFFFF < cu then taken ctx
                else next ctx)
            | Ast.GtS ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a > ci then taken ctx else next ctx)
            | Ast.GtU ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a land 0xFFFFFFFF > cu then taken ctx
                else next ctx)
            | Ast.LeS ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a <= ci then taken ctx else next ctx)
            | Ast.LeU ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a land 0xFFFFFFFF <= cu then taken ctx
                else next ctx)
            | Ast.GeS ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a >= ci then taken ctx else next ctx)
            | Ast.GeU ->
              finish (fun ctx ->
                if Array.unsafe_get ctx.il a land 0xFFFFFFFF >= cu then taken ctx
                else next ctx))
         | XBrIfRel (r, k) ->
           let f = Eval_numeric.irelop_i32_int r in
           let s = !h - 2 in
           let taken = branch_edge ~cur ~from_h:(!h - 2) frames_at.(p) k in
           let next = jump_to ~cur (p + 2) in
           finish (fun ctx ->
             let id = ctx.id in
             if f (Array.unsafe_get id s) (Array.unsafe_get id (s + 1)) then
               taken ctx
             else next ctx)
         | XBrIfEqz k ->
           let s = !h - 1 in
           let taken = branch_edge ~cur ~from_h:(!h - 1) frames_at.(p) k in
           let next = jump_to ~cur (p + 2) in
           finish (fun ctx ->
             if Array.unsafe_get ctx.id s = 0 then taken ctx else next ctx)
         | XFusedTail -> raise Unsupported)
      done;
      let term_closure =
        match !term with
        | Some t -> t
        | None ->
          (* fall through to the next block (a label target), keeping
             the charge mark — tier 0 does not recharge here either *)
          if eb = n then ret_edge ~from_h:!h else jump_to ~cur eb
      in
      let body_cl = seq (List.rev !ops) term_closure in
      (* the charge prologue replicates tier 0's batched fuel/step
         accounting bit for bit: same condition, same amounts, same
         profiler run credit *)
      let len = run_len.(sb) in
      fun ctx ->
        if sb >= ctx.charged then begin
          if inst.fuel <= 0 then raise (Exhaustion "out of fuel");
          (match inst.inst_gov with None -> () | Some g -> Governor.check_batch g);
          inst.steps <- inst.steps + len;
          inst.fuel <- inst.fuel - len;
          ctx.charged <- sb + len;
          (match inst.inst_prof with
           | None -> ()
           | Some pr -> Obs.Profile.bump_run pr ~fid ~body_len:n ~pc:sb ~len);
          match inst.inst_triggers with
          | [] -> ()
          | _ -> fire_triggers inst
        end;
        body_cl ctx
    end
  in
  (* increasing order: back-edge targets are final when referenced *)
  for b = 0 to !nblocks - 1 do
    cells.(b) := compile_block b
  done;
  let entry = !(cells.(0)) in
  let nparams = code.c_nparams in
  let has_il = Array.exists (fun t -> t = I32T) ltypes in
  let has_fl = Array.exists (fun t -> t = F64T) ltypes in
  let i32_params = ref []
  and f64_params = ref [] in
  for j = nparams - 1 downto 0 do
    match ltypes.(j) with
    | I32T -> i32_params := j :: !i32_params
    | F64T -> f64_params := j :: !f64_params
    | I64T | F32T -> ()
  done;
  let i32_params = Array.of_list !i32_params in
  let f64_params = Array.of_list !f64_params in
  fun _inst locals ->
    let st = inst.inst_stack in
    stack_reserve st (st.size + max_h);
    (* fresh typed scratch per activation; declared locals default to
       zero, matching [c_local_defaults] *)
    let il = if has_il then Array.make nlocals 0 else empty_ints in
    let fl = if has_fl then Array.make nlocals 0.0 else empty_floats in
    Array.iter
      (fun j ->
         Array.unsafe_set il j
           (Int32.to_int (Value.as_i32 (Array.unsafe_get locals j))))
      i32_params;
    Array.iter
      (fun j -> Array.unsafe_set fl j (Value.as_f64 (Array.unsafe_get locals j)))
      f64_params;
    let id = if max_h = 0 then empty_ints else Array.make max_h 0 in
    let fd = if max_h = 0 then empty_floats else Array.make max_h 0.0 in
    let ctx = { st; locals; il; fl; id; fd; base = st.size; charged = 0 } in
    entry ctx

(** {1 Public API} *)

let compile (inst : instance) (fid : int) : compiled_body option =
  try Some (compile_exn inst fid) with Unsupported -> None

let policy ?(threshold = default_threshold) () : tier_policy =
  { tp_threshold = max 1 threshold; tp_compile = compile }

let enable ?threshold inst = set_tier inst (Some (policy ?threshold ()))
let disable inst = set_tier inst None

(** Eagerly compile every function body, marking the rest unsupported;
    returns the number compiled. Installs a threshold-1 policy if none
    is present (so functions instantiated later still tier up). *)
let compile_all inst =
  (match inst.inst_tier with
   | Some _ -> ()
   | None -> set_tier inst (Some (policy ~threshold:1 ())));
  let ok = ref 0 in
  Array.iteri
    (fun i c ->
       (* probed functions stay on the probed dispatch loop; leave their
          tier state alone so detaching re-tiers them naturally *)
       match c.c_probe with
       | Some _ -> ()
       | None ->
         match compile inst i with
         | Some f ->
           c.c_tier <- T_compiled f;
           incr ok
         | None -> c.c_tier <- T_unsupported)
    inst.inst_code;
  !ok

(** Tier threshold requested via the [WASABI_TIER] environment
    variable: unset / ["0"] / ["off"] / ["none"] disable tier-up,
    ["on"] / ["default"] select {!default_threshold}, a positive
    integer is used as the threshold directly. *)
let env_threshold () =
  match Sys.getenv_opt "WASABI_TIER" with
  | None -> None
  | Some s ->
    (match String.lowercase_ascii (String.trim s) with
     | "" | "0" | "off" | "none" -> None
     | "on" | "default" -> Some default_threshold
     | s ->
       (match int_of_string_opt s with
        | Some k when k > 0 -> Some k
        | _ -> None))

(** Apply the environment policy: enable tier-up iff [WASABI_TIER]
    requests it. *)
let enable_from_env inst =
  match env_threshold () with
  | Some threshold -> enable ~threshold inst
  | None -> ()
