(** Rendering of interpreter profiles against a live instance: hot
    function tables, the executed opcode mix, and folded stacks for
    flamegraph tools.

    {!Obs.Profile} deliberately knows nothing about Wasm — it counts
    anonymous function ids and body positions. This module joins those
    numbers back to the module: ids become export names (or [func[i]] in
    the function index space), and per-site execution counts become an
    opcode mix via the original [c_body] (so superinstruction fusion in
    the pre-decoded form does not distort the mix). *)

open Interp

(** Number of imported functions: function-index-space index of defined
    function [fid] is [fid + n_imported]. *)
let n_imported (inst : instance) =
  Array.length inst.inst_funcs - Array.length inst.inst_code

(** Display name of defined function [fid]: its export name when
    exported, [func[i]] in the function index space otherwise. *)
let func_name (inst : instance) (fid : int) : string =
  let exported =
    List.find_map
      (fun (name, ext) ->
         match ext with
         | Extern_func (Wasm_func (j, owner)) when j = fid && owner == inst -> Some name
         | _ -> None)
      inst.inst_exports
  in
  match exported with
  | Some name -> name
  | None -> Printf.sprintf "func[%d]" (fid + n_imported inst)

(** {1 Hot-function table} *)

let ms ns = Obs.Clock.ns_to_ms ns

let pct part total =
  if Int64.equal total 0L then 0.0
  else 100.0 *. Int64.to_float part /. Int64.to_float total

(** Per-function rows, hottest (by self time) first. *)
let func_table ?(top = 20) (inst : instance) (prof : Obs.Profile.t) : string =
  let rows = Obs.Profile.func_rows prof in
  let total = Obs.Profile.total_self_ns prof in
  let shown = List.filteri (fun i _ -> i < top) rows in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-24s %12s %12s %12s %7s\n" "function" "calls" "self ms"
       "incl ms" "self%");
  List.iter
    (fun (r : Obs.Profile.func_row) ->
       Buffer.add_string b
         (Printf.sprintf "%-24s %12d %12.3f %12.3f %6.1f%%\n"
            (func_name inst r.fr_fid) r.fr_calls (ms r.fr_self_ns) (ms r.fr_incl_ns)
            (pct r.fr_self_ns total)))
    shown;
  let omitted = List.length rows - List.length shown in
  if omitted > 0 then
    Buffer.add_string b (Printf.sprintf "... and %d more functions\n" omitted);
  Buffer.contents b

(** {1 Opcode mix} *)

(* "i32.const 7" and "i32.const 9" are the same opcode: strip immediates
   at the first space of the rendered instruction. *)
let opcode_of_instr (i : Ast.instr) : string =
  let s = Ast.string_of_instr i in
  match String.index_opt s ' ' with
  | Some sp -> String.sub s 0 sp
  | None -> s

(** Executed opcode mix over the original (pre-fusion) instruction
    bodies, from the per-site execution counts; sorted by count
    descending, opcode name tiebreak. *)
let opcode_mix (inst : instance) (prof : Obs.Profile.t) : (string * int) list =
  let tbl = Hashtbl.create 64 in
  Obs.Profile.iter_sites prof (fun fid counts ->
      if fid >= 0 && fid < Array.length inst.inst_code then begin
        let body = inst.inst_code.(fid).c_body in
        Array.iteri
          (fun i c ->
             if c > 0 && i < Array.length body then begin
               let op = opcode_of_instr body.(i) in
               match Hashtbl.find_opt tbl op with
               | Some r -> r := !r + c
               | None -> Hashtbl.add tbl op (ref c)
             end)
          counts
      end);
  Hashtbl.fold (fun op r acc -> (op, !r) :: acc) tbl []
  |> List.sort (fun (o1, c1) (o2, c2) ->
       match compare c2 c1 with 0 -> compare o1 o2 | c -> c)

let render_opcode_mix ?(top = 20) (inst : instance) (prof : Obs.Profile.t) : string =
  let mix = opcode_mix inst prof in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 mix in
  let shown = List.filteri (fun i _ -> i < top) mix in
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "%-24s %14s %7s\n" "opcode" "executed" "share");
  List.iter
    (fun (op, c) ->
       Buffer.add_string b
         (Printf.sprintf "%-24s %14d %6.1f%%\n" op c
            (if total = 0 then 0.0 else 100.0 *. Float.of_int c /. Float.of_int total)))
    shown;
  let omitted = List.length mix - List.length shown in
  if omitted > 0 then
    Buffer.add_string b (Printf.sprintf "... and %d more opcodes\n" omitted);
  Buffer.contents b

(** {1 Folded stacks} *)

(** Flamegraph folded-stack lines, function ids resolved to names. *)
let folded (inst : instance) (prof : Obs.Profile.t) : string list =
  Obs.Profile.folded_lines ~name_of:(func_name inst) prof
