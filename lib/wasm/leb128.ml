(** LEB128 variable-length integer encoding, as used throughout the
    WebAssembly binary format (and DWARF). *)

exception Overflow of string

(** {1 Encoding} *)

(** Append an unsigned LEB128 encoding of [x] (interpreted as unsigned
    64-bit) to [buf]. *)
let write_u64 buf (x : int64) =
  let rec go x =
    let byte = Int64.to_int (Int64.logand x 0x7FL) in
    let rest = Int64.shift_right_logical x 7 in
    if Int64.equal rest 0L then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      go rest
    end
  in
  go x

let write_u32 buf (x : int32) = write_u64 buf (Int64.logand (Int64.of_int32 x) 0xFFFFFFFFL)

(** Append an unsigned encoding of a non-negative OCaml int (indices,
    counts, sizes). *)
let write_uint buf (x : int) =
  if x < 0 then invalid_arg "Leb128.write_uint: negative";
  write_u64 buf (Int64.of_int x)

(** Append a signed LEB128 encoding of [x]. *)
let write_s64 buf (x : int64) =
  let rec go x =
    let byte = Int64.to_int (Int64.logand x 0x7FL) in
    let rest = Int64.shift_right x 7 in
    let sign_clear = byte land 0x40 = 0 in
    if (Int64.equal rest 0L && sign_clear) || (Int64.equal rest (-1L) && not sign_clear) then
      Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      go rest
    end
  in
  go x

let write_s32 buf (x : int32) = write_s64 buf (Int64.of_int32 x)

(** {1 Decoding}

    Decoders read from a [string] at a mutable position reference and
    return the decoded value. They raise {!Overflow} on encodings that are
    too long or that do not fit the requested width, and [Invalid_argument]
    on truncated input. *)

let byte_at s pos =
  if !pos >= String.length s then invalid_arg "Leb128: unexpected end of input";
  let b = Char.code s.[!pos] in
  incr pos;
  b

(** Read an unsigned LEB128 value of at most [bits] bits, enforcing the
    spec's ceiling on encoded length: at most [ceil bits/7] bytes, and the
    unused high bits of the final byte must be zero. Non-minimal (padded)
    encodings within those limits are legal and accepted. *)
let read_unsigned ~bits s pos : int64 =
  let max_bytes = (bits + 6) / 7 in
  let rec go i shift acc =
    if i >= max_bytes then
      raise (Overflow (Printf.sprintf "u%d LEB128 too long" bits));
    let b = byte_at s pos in
    let payload = b land 0x7F in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int payload) shift) in
    if b land 0x80 <> 0 then go (i + 1) (shift + 7) acc
    else begin
      let used = bits - shift in
      if used < 7 && payload lsr used <> 0 then
        raise (Overflow (Printf.sprintf "u%d LEB128 out of range" bits));
      acc
    end
  in
  go 0 0 0L

(** Read a signed LEB128 value of at most [bits] bits: at most
    [ceil bits/7] bytes, and the unused high bits of the final byte must
    all replicate the value's sign bit. *)
let read_signed ~bits s pos : int64 =
  let max_bytes = (bits + 6) / 7 in
  let rec go i shift acc =
    if i >= max_bytes then
      raise (Overflow (Printf.sprintf "s%d LEB128 too long" bits));
    let b = byte_at s pos in
    let payload = b land 0x7F in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int payload) shift) in
    if b land 0x80 <> 0 then go (i + 1) (shift + 7) acc
    else if bits - shift >= 7 then
      (* the whole payload is significant: ordinary sign extension *)
      if shift + 7 < 64 && payload land 0x40 <> 0 then
        Int64.logor acc (Int64.shift_left (-1L) (shift + 7))
      else acc
    else begin
      (* final byte of a maximal-length encoding: the top [7 - used]
         payload bits must replicate the sign bit *)
      let used = bits - shift in
      let sign = (payload lsr (used - 1)) land 1 in
      let excess = payload lsr used in
      let expected = if sign = 1 then (1 lsl (7 - used)) - 1 else 0 in
      if excess <> expected then
        raise (Overflow (Printf.sprintf "s%d LEB128 out of range" bits));
      if sign = 1 && shift + used < 64 then
        Int64.logor acc (Int64.shift_left (-1L) (shift + used))
      else acc
    end
  in
  go 0 0 0L

let read_u64 s pos : int64 = read_unsigned ~bits:64 s pos

(* the width bound guarantees the value fits: no range check needed *)
let read_u32 s pos : int32 = Int64.to_int32 (read_unsigned ~bits:32 s pos)

(** Read an unsigned integer that must fit a non-negative OCaml int. The
    binary format's counts, sizes and indices are all u32. *)
let read_uint s pos : int = Int64.to_int (read_unsigned ~bits:32 s pos)

let read_s64 s pos : int64 = read_signed ~bits:64 s pos
let read_s32 s pos : int32 = Int64.to_int32 (read_signed ~bits:32 s pos)

(** Number of bytes an unsigned encoding of [x] occupies. *)
let uint_size (x : int) =
  let rec go n x = if x < 0x80 then n else go (n + 1) (x lsr 7) in
  go 1 x
