(** LEB128 variable-length integer encoding, as used throughout the
    WebAssembly binary format (and DWARF). *)

exception Overflow of string

(** {1 Encoding} *)

(** Append an unsigned LEB128 encoding of [x] (interpreted as unsigned
    64-bit) to [buf]. *)
let write_u64 buf (x : int64) =
  let rec go x =
    let byte = Int64.to_int (Int64.logand x 0x7FL) in
    let rest = Int64.shift_right_logical x 7 in
    if Int64.equal rest 0L then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      go rest
    end
  in
  go x

let write_u32 buf (x : int32) = write_u64 buf (Int64.logand (Int64.of_int32 x) 0xFFFFFFFFL)

(** Append an unsigned encoding of a non-negative OCaml int (indices,
    counts, sizes). *)
let write_uint buf (x : int) =
  if x < 0 then invalid_arg "Leb128.write_uint: negative";
  write_u64 buf (Int64.of_int x)

(** Append a signed LEB128 encoding of [x]. *)
let write_s64 buf (x : int64) =
  let rec go x =
    let byte = Int64.to_int (Int64.logand x 0x7FL) in
    let rest = Int64.shift_right x 7 in
    let sign_clear = byte land 0x40 = 0 in
    if (Int64.equal rest 0L && sign_clear) || (Int64.equal rest (-1L) && not sign_clear) then
      Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      go rest
    end
  in
  go x

let write_s32 buf (x : int32) = write_s64 buf (Int64.of_int32 x)

(** {1 Decoding}

    Decoders read from a [string] at a mutable position reference and
    return the decoded value. They raise {!Overflow} on encodings that are
    too long or that do not fit the requested width, and [Invalid_argument]
    on truncated input. *)

let byte_at s pos =
  if !pos >= String.length s then invalid_arg "Leb128: unexpected end of input";
  let b = Char.code s.[!pos] in
  incr pos;
  b

let read_u64 s pos : int64 =
  let rec go shift acc =
    if shift >= 64 then raise (Overflow "u64 LEB128 too long");
    let b = byte_at s pos in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7F)) shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0L

let read_u32 s pos : int32 =
  let v = read_u64 s pos in
  if Int64.unsigned_compare v 0xFFFFFFFFL > 0 then raise (Overflow "u32 LEB128 out of range");
  Int64.to_int32 v

(** Read an unsigned integer that must fit a non-negative OCaml int. *)
let read_uint s pos : int =
  let v = read_u64 s pos in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Overflow "uint LEB128 out of range");
  Int64.to_int v

let read_s64 s pos : int64 =
  let rec go shift acc =
    if shift >= 70 then raise (Overflow "s64 LEB128 too long");
    let b = byte_at s pos in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7F)) shift) in
    if b land 0x80 = 0 then
      let shift = shift + 7 in
      if shift < 64 && b land 0x40 <> 0 then
        Int64.logor acc (Int64.shift_left (-1L) shift)
      else acc
    else go (shift + 7) acc
  in
  go 0 0L

let read_s32 s pos : int32 =
  let v = read_s64 s pos in
  if Int64.compare v (Int64.of_int32 Int32.max_int) > 0
  || Int64.compare v (Int64.of_int32 Int32.min_int) < 0 then
    raise (Overflow "s32 LEB128 out of range");
  Int64.to_int32 v

(** Number of bytes an unsigned encoding of [x] occupies. *)
let uint_size (x : int) =
  let rec go n x = if x < 0x80 then n else go (n + 1) (x lsr 7) in
  go 1 x
