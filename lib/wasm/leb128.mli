(** LEB128 variable-length integer encoding, as used throughout the
    WebAssembly binary format. *)

exception Overflow of string
(** Raised by decoders on encodings that are too long or out of range for
    the requested width. *)

(** {1 Encoding} *)

val write_u64 : Buffer.t -> int64 -> unit
(** Append the unsigned encoding of a 64-bit value (interpreted as
    unsigned). *)

val write_u32 : Buffer.t -> int32 -> unit
val write_uint : Buffer.t -> int -> unit
(** Unsigned encoding of a non-negative OCaml int (indices, counts).
    @raise Invalid_argument on negative input. *)

val write_s64 : Buffer.t -> int64 -> unit
(** Append the signed (two's complement) encoding. *)

val write_s32 : Buffer.t -> int32 -> unit

(** {1 Decoding}

    All decoders read from [s] at the mutable position [pos], advancing it
    past the consumed bytes. They raise {!Overflow} on malformed or
    out-of-range encodings and [Invalid_argument] on truncated input. *)

val read_unsigned : bits:int -> string -> int ref -> int64
(** Strict width-checked decoding: at most [ceil bits/7] bytes, and the
    unused high bits of the final byte must be zero. Non-minimal (padded)
    encodings within those limits are accepted. *)

val read_signed : bits:int -> string -> int ref -> int64
(** As {!read_unsigned}, except the unused high bits of a maximal-length
    encoding's final byte must replicate the sign bit. *)

val read_u64 : string -> int ref -> int64
val read_u32 : string -> int ref -> int32

val read_uint : string -> int ref -> int
(** u32 decoding into an OCaml [int] (the format's counts and indices). *)

val read_s64 : string -> int ref -> int64
val read_s32 : string -> int ref -> int32

val uint_size : int -> int
(** Number of bytes the unsigned encoding of a value occupies. *)
