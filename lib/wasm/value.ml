(** Runtime values and the numeric semantics of WebAssembly (MVP).

    [f32] values are represented by their IEEE-754 single-precision bit
    pattern (an [int32]); arithmetic converts to OCaml [float], computes,
    and rounds back to single precision. [f64] maps directly to [float].

    All partial operations (division by zero, overflowing float-to-int
    truncation, ...) raise {!Trap} with the error message mandated by the
    specification. *)

(** Raised by numeric operations and by the interpreter on a Wasm trap.
    The canonical declaration lives in {!Error} (the unified taxonomy);
    this rebinding keeps the historical [Value.Trap] name working. *)
exception Trap = Error.Trap

let trap msg = raise (Trap msg)

type t =
  | I32 of int32
  | I64 of int64
  | F32 of int32  (** bit pattern *)
  | F64 of float

let type_of : t -> Types.value_type = function
  | I32 _ -> Types.I32T
  | I64 _ -> Types.I64T
  | F32 _ -> Types.F32T
  | F64 _ -> Types.F64T

let default : Types.value_type -> t = function
  | Types.I32T -> I32 0l
  | Types.I64T -> I64 0L
  | Types.F32T -> F32 0l
  | Types.F64T -> F64 0.0

(** Single-precision helpers: convert between the bit representation and
    the OCaml float used to compute. [Int32.bits_of_float] performs the
    round-to-nearest conversion to single precision. *)
module F32_repr = struct
  let to_float (bits : int32) : float = Int32.float_of_bits bits
  let of_float (f : float) : int32 = Int32.bits_of_float f
end

let i32 x = I32 x
let i64 x = I64 x
let f32 f = F32 (F32_repr.of_float f)
let f32_bits bits = F32 bits
let f64 f = F64 f
let i32_of_int x = I32 (Int32.of_int x)

(* Comparison and test results are shared so the interpreter's hottest
   consumers (loop conditions) allocate nothing. *)
let i32_zero = I32 0l
let i32_one = I32 1l
let i32_of_bool b = if b then i32_one else i32_zero

let as_i32 = function I32 x -> x | _ -> trap "type mismatch: expected i32"
let as_i64 = function I64 x -> x | _ -> trap "type mismatch: expected i64"
let as_f32 = function F32 x -> F32_repr.to_float x | _ -> trap "type mismatch: expected f32"
let as_f32_bits = function F32 x -> x | _ -> trap "type mismatch: expected f32"
let as_f64 = function F64 x -> x | _ -> trap "type mismatch: expected f64"

let to_string = function
  | I32 x -> Printf.sprintf "i32:%ld" x
  | I64 x -> Printf.sprintf "i64:%Ld" x
  | F32 b -> Printf.sprintf "f32:%h" (F32_repr.to_float b)
  | F64 f -> Printf.sprintf "f64:%h" f

let pp fmt v = Format.pp_print_string fmt (to_string v)

(** Structural equality suitable for tests: NaNs of the same width compare
    equal to each other (bit patterns of NaN results are not fully
    deterministic across evaluation strategies). *)
let equal a b =
  match a, b with
  | I32 x, I32 y -> Int32.equal x y
  | I64 x, I64 y -> Int64.equal x y
  | F32 x, F32 y ->
    let fx = F32_repr.to_float x and fy = F32_repr.to_float y in
    (fx <> fx && fy <> fy) || Int32.equal x y
  | F64 x, F64 y -> (x <> x && y <> y) || Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _, _ -> false

(** 32-bit integer operations. *)
module I32_ops = struct
  open Int32

  let clz x =
    if equal x 0l then 32
    else
      let rec go n x = if logand x 0x80000000l <> 0l then n else go (n + 1) (shift_left x 1) in
      go 0 x

  let ctz x =
    if equal x 0l then 32
    else
      let rec go n x = if logand x 1l <> 0l then n else go (n + 1) (shift_right_logical x 1) in
      go 0 x

  let popcnt x =
    let rec go acc x = if equal x 0l then acc else go (acc + to_int (logand x 1l)) (shift_right_logical x 1) in
    go 0 x

  let div_s a b =
    if equal b 0l then trap "integer divide by zero"
    else if equal a min_int && equal b (-1l) then trap "integer overflow"
    else div a b

  let div_u a b = if equal b 0l then trap "integer divide by zero" else unsigned_div a b

  let rem_s a b =
    if equal b 0l then trap "integer divide by zero"
    else if equal a min_int && equal b (-1l) then 0l
    else rem a b

  let rem_u a b = if equal b 0l then trap "integer divide by zero" else unsigned_rem a b
  let shl a b = shift_left a (to_int (logand b 31l))
  let shr_s a b = shift_right a (to_int (logand b 31l))
  let shr_u a b = shift_right_logical a (to_int (logand b 31l))

  let rotl a b =
    let n = to_int (logand b 31l) in
    if n = 0 then a else logor (shift_left a n) (shift_right_logical a (32 - n))

  let rotr a b =
    let n = to_int (logand b 31l) in
    if n = 0 then a else logor (shift_right_logical a n) (shift_left a (32 - n))

  let lt_u a b = unsigned_compare a b < 0
  let gt_u a b = unsigned_compare a b > 0
  let le_u a b = unsigned_compare a b <= 0
  let ge_u a b = unsigned_compare a b >= 0
end

(** 64-bit integer operations. *)
module I64_ops = struct
  open Int64

  let clz x =
    if equal x 0L then 64
    else
      let rec go n x = if logand x 0x8000000000000000L <> 0L then n else go (n + 1) (shift_left x 1) in
      go 0 x

  let ctz x =
    if equal x 0L then 64
    else
      let rec go n x = if logand x 1L <> 0L then n else go (n + 1) (shift_right_logical x 1) in
      go 0 x

  let popcnt x =
    let rec go acc x = if equal x 0L then acc else go (acc + to_int (logand x 1L)) (shift_right_logical x 1) in
    go 0 x

  let div_s a b =
    if equal b 0L then trap "integer divide by zero"
    else if equal a min_int && equal b (-1L) then trap "integer overflow"
    else div a b

  let div_u a b = if equal b 0L then trap "integer divide by zero" else unsigned_div a b

  let rem_s a b =
    if equal b 0L then trap "integer divide by zero"
    else if equal a min_int && equal b (-1L) then 0L
    else rem a b

  let rem_u a b = if equal b 0L then trap "integer divide by zero" else unsigned_rem a b
  let shl a b = shift_left a (to_int (logand b 63L))
  let shr_s a b = shift_right a (to_int (logand b 63L))
  let shr_u a b = shift_right_logical a (to_int (logand b 63L))

  let rotl a b =
    let n = to_int (logand b 63L) in
    if n = 0 then a else logor (shift_left a n) (shift_right_logical a (64 - n))

  let rotr a b =
    let n = to_int (logand b 63L) in
    if n = 0 then a else logor (shift_right_logical a n) (shift_left a (64 - n))

  let lt_u a b = unsigned_compare a b < 0
  let gt_u a b = unsigned_compare a b > 0
  let le_u a b = unsigned_compare a b <= 0
  let ge_u a b = unsigned_compare a b >= 0
end

(** Float operations shared by f32 and f64 (computed in double precision;
    the f32 instruction implementations round results back to single). *)
module F_ops = struct
  let is_nan f = f <> f

  (* Wasm min/max: NaN-propagating, and -0 < +0. *)
  let fmin a b =
    if is_nan a || is_nan b then Float.nan
    else if a < b then a
    else if b < a then b
    else if a = 0.0 && (1.0 /. a < 0.0 || 1.0 /. b < 0.0) then -0.0
    else a

  let fmax a b =
    if is_nan a || is_nan b then Float.nan
    else if a > b then a
    else if b > a then b
    else if a = 0.0 && (1.0 /. a > 0.0 || 1.0 /. b > 0.0) then 0.0
    else a

  (* Round to nearest, ties to even. *)
  let nearest f =
    if is_nan f || Float.is_integer f then f
    else
      let u = Float.ceil f and d = Float.floor f in
      let um = abs_float (f -. u) and dm = abs_float (f -. d) in
      if um < dm then u
      else if dm < um then d
      else if Float.rem u 2.0 = 0.0 then u
      else d

  let trunc = Float.trunc
  let copysign = Float.copy_sign
end

(** Float-to-integer truncations: trap on NaN and on out-of-range values. *)
module Cvt = struct
  let check_nan f = if F_ops.is_nan f then trap "invalid conversion to integer"

  let i32_trunc_s f =
    check_nan f;
    let t = Float.trunc f in
    if t >= 2147483648.0 || t < -2147483648.0 then trap "integer overflow" else Int32.of_float t

  let i32_trunc_u f =
    check_nan f;
    let t = Float.trunc f in
    if t >= 4294967296.0 || t <= -1.0 then trap "integer overflow"
    else Int64.to_int32 (Int64.of_float t)

  let i64_trunc_s f =
    check_nan f;
    let t = Float.trunc f in
    if t >= 9223372036854775808.0 || t < -9223372036854775808.0 then trap "integer overflow"
    else Int64.of_float t

  let i64_trunc_u f =
    check_nan f;
    let t = Float.trunc f in
    if t >= 18446744073709551616.0 || t <= -1.0 then trap "integer overflow"
    else if t >= 9223372036854775808.0 then
      Int64.logxor (Int64.of_float (t -. 9223372036854775808.0)) Int64.min_int
    else Int64.of_float t

  (* saturating (non-trapping) variants: NaN maps to 0, out-of-range
     values clamp to the representable extremes *)
  let i32_trunc_sat_s f =
    if F_ops.is_nan f then 0l
    else
      let t = Float.trunc f in
      if t >= 2147483648.0 then Int32.max_int
      else if t < -2147483648.0 then Int32.min_int
      else Int32.of_float t

  let i32_trunc_sat_u f =
    if F_ops.is_nan f then 0l
    else
      let t = Float.trunc f in
      if t >= 4294967296.0 then -1l
      else if t <= -1.0 then 0l
      else Int64.to_int32 (Int64.of_float t)

  let i64_trunc_sat_s f =
    if F_ops.is_nan f then 0L
    else
      let t = Float.trunc f in
      if t >= 9223372036854775808.0 then Int64.max_int
      else if t < -9223372036854775808.0 then Int64.min_int
      else Int64.of_float t

  let i64_trunc_sat_u f =
    if F_ops.is_nan f then 0L
    else
      let t = Float.trunc f in
      if t >= 18446744073709551616.0 then -1L
      else if t <= -1.0 then 0L
      else if t >= 9223372036854775808.0 then
        Int64.logxor (Int64.of_float (t -. 9223372036854775808.0)) Int64.min_int
      else Int64.of_float t

  let u32_to_float x = Int64.to_float (Int64.logand (Int64.of_int32 x) 0xFFFFFFFFL)

  let u64_to_float x =
    if Int64.compare x 0L >= 0 then Int64.to_float x
    else
      (* split into top 63 bits and low bit to avoid signedness issues *)
      Int64.to_float (Int64.shift_right_logical x 1) *. 2.0
      +. Int64.to_float (Int64.logand x 1L)
end
