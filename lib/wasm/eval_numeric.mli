(** Evaluation of numeric instructions on runtime values. Partial
    operations raise [Value.Trap]. *)

val eval_unop : Ast.unop -> Value.t -> Value.t
val eval_binop : Ast.binop -> Value.t -> Value.t -> Value.t
val eval_testop : Ast.testop -> Value.t -> Value.t
val eval_relop : Ast.relop -> Value.t -> Value.t -> Value.t
val eval_cvtop : Ast.cvtop -> Value.t -> Value.t
