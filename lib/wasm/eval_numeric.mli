(** Evaluation of numeric instructions on runtime values. Partial
    operations raise [Value.Trap]. *)

val eval_unop : Ast.unop -> Value.t -> Value.t
val eval_binop : Ast.binop -> Value.t -> Value.t -> Value.t
val eval_testop : Ast.testop -> Value.t -> Value.t
val eval_relop : Ast.relop -> Value.t -> Value.t -> Value.t
val eval_cvtop : Ast.cvtop -> Value.t -> Value.t

(** {1 Scalar operator implementations}

    The word-level semantics behind the [eval_*] dispatchers, exposed so
    the interpreter's pre-decoded opcodes can evaluate an operator that
    was resolved at instantiation time without re-examining the operand
    tags. Trapping operators (division, remainder) trap exactly as their
    [eval_*] counterparts do. *)

val ibinop_i32 : Ast.ibinop -> int32 -> int32 -> int32
val ibinop_i64 : Ast.ibinop -> int64 -> int64 -> int64
val fbinop_impl : Ast.fbinop -> float -> float -> float
val irelop_impl_i32 : Ast.irelop -> int32 -> int32 -> bool
val irelop_impl_i64 : Ast.irelop -> int64 -> int64 -> bool
val frelop_impl : Ast.frelop -> float -> float -> bool
val funop_impl : Ast.funop -> float -> float
