(** Evaluation of numeric instructions on runtime values. Partial
    operations raise [Value.Trap]. *)

val eval_unop : Ast.unop -> Value.t -> Value.t
val eval_binop : Ast.binop -> Value.t -> Value.t -> Value.t
val eval_testop : Ast.testop -> Value.t -> Value.t
val eval_relop : Ast.relop -> Value.t -> Value.t -> Value.t
val eval_cvtop : Ast.cvtop -> Value.t -> Value.t

(** {1 Scalar operator implementations}

    The word-level semantics behind the [eval_*] dispatchers, exposed so
    the interpreter's pre-decoded opcodes can evaluate an operator that
    was resolved at instantiation time without re-examining the operand
    tags. Trapping operators (division, remainder) trap exactly as their
    [eval_*] counterparts do. *)

val ibinop_i32 : Ast.ibinop -> int32 -> int32 -> int32
val ibinop_i64 : Ast.ibinop -> int64 -> int64 -> int64
val fbinop_impl : Ast.fbinop -> float -> float -> float
val irelop_impl_i32 : Ast.irelop -> int32 -> int32 -> bool
val irelop_impl_i64 : Ast.irelop -> int64 -> int64 -> bool
val frelop_impl : Ast.frelop -> float -> float -> bool
val funop_impl : Ast.funop -> float -> float

(** {1 Compile-time operator tables (tier 1)}

    Per-operator closures with the operator dispatch hoisted out, for
    the closure compiler ({!Tier1}): resolving the operator once at
    compile time yields the exact semantics of the [*_impl] dispatchers
    above (same masked shift/rotate counts, same traps). *)

val ibinop_i32_fn : Ast.ibinop -> int32 -> int32 -> int32
val ibinop_i64_fn : Ast.ibinop -> int64 -> int64 -> int64
val fbinop_fn : Ast.fbinop -> float -> float -> float
val irelop_i32_fn : Ast.irelop -> int32 -> int32 -> bool
val irelop_i64_fn : Ast.irelop -> int64 -> int64 -> bool
val frelop_fn : Ast.frelop -> float -> float -> bool

(** {1 Int-domain i32 operators (tier 1)}

    The closure compiler's canonical i32 representation is a
    sign-extended native int (bits 31..62 replicate bit 31). These
    mirror {!ibinop_i32}/[irelop_impl_i32] exactly — same masked
    shift/rotate counts, same traps — on that representation. *)

val norm32 : int -> int
(** Sign-extend the low 32 bits into canonical form. *)

val uns32 : int -> int
(** The unsigned value of a canonical i32. *)

val ibinop_i32_int : Ast.ibinop -> int -> int -> int
val irelop_i32_int : Ast.irelop -> int -> int -> bool
