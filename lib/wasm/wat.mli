(** Printer for the WebAssembly text format (linear style, one instruction
    per line, blocks indented). The parser lives in {!Wat_parse}. *)

val to_string : Ast.module_ -> string
val instr_text : Ast.instr -> string
(** Single-instruction rendering, including immediates. *)
