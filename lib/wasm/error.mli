(** The unified error taxonomy of the Wasm pipeline.

    All structured failure modes — malformed binaries, invalid modules,
    link failures, traps, exhaustion — are described by one record
    (phase + stable code + optional byte offset + message). The public
    exceptions are declared here and re-exported under their historical
    names ([Decode.Decode_error], [Validate.Invalid],
    [Interp.Link_error], [Interp.Exhaustion], [Value.Trap]); {!classify}
    maps any exception back to its structured description. An exception
    {!classify} does not recognise is, on untrusted-input paths, an
    engine bug — the fuzzing harness treats it as a totality violation. *)

type phase =
  | Decode  (** binary parsing of untrusted bytes *)
  | Validate  (** type checking of a decoded module *)
  | Link  (** instantiation: imports, segments *)
  | Run  (** execution: traps and exhaustion *)

val phase_name : phase -> string

type t = {
  phase : phase;
  code : string;  (** stable kebab-case triage bucket *)
  offset : int option;  (** byte offset into the input, when known *)
  message : string;
}

val make : phase:phase -> code:string -> ?offset:int -> ('a, unit, string, t) format4 -> 'a
val to_string : t -> string

exception Decode_error of t
exception Invalid of string
exception Link_error of string
exception Trap of string
exception Exhaustion of string

exception Hook_error of t
(** re-exported as [Wasabi.Runtime.Bad_hook_args]: a low-level hook
    received arguments inconsistent with its spec (phase [Run], code
    ["bad-hook-args"]) — an instrumentation bug, not a program trap. *)

exception Governor_limit of t
(** A resource-governor budget was violated (phase [Run]): per-run
    wall-clock deadline (code ["deadline-exceeded"]), memory-growth cap
    (["memory-growth-limit"]) or host-call budget (["host-call-budget"]).
    Distinct from {!Exhaustion} (engine-intrinsic fuel / call-depth
    limits, code ["resource-exhausted"]): governor budgets are operator
    policy applied to one run. *)

val decode_error : code:string -> ?offset:int -> ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Decode_error} with a formatted message. *)

val hook_error : code:string -> ?offset:int -> ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Hook_error} (phase [Run]) with a formatted message. *)

val governor_error : code:string -> ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Governor_limit} (phase [Run]) with a formatted message. *)

val trap_code : string -> string
(** Canonical code of a spec-mandated trap message (["trap"] otherwise). *)

val is_engine_bug : t -> bool
(** [true] iff the message is tagged "(engine bug)" — an internal
    invariant violation rather than a property of the input. *)

val classify : exn -> t option
(** Structured description of an exception, or [None] for exceptions
    outside the structured surface (crashes, from the point of view of
    untrusted-input handling). *)

val exit_code : t -> int
(** CLI exit code: decode 3, validate 4, link 5, trap 6, resource
    exhaustion 7, hook-dispatch error 9, governor deadline 10, governor
    memory-growth cap 11, governor host-call budget 12 (8 is the
    instrumentation-soundness lint). *)
