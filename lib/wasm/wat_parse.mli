(** Parser for the WebAssembly text format: modules with
    type/import/func/memory/table/global/export/start/elem/data fields,
    numeric and [$name] identifiers, linear instruction sequences, and
    folded s-expressions including [(if (then ...) (else ...))]. *)

exception Parse_error of string

val parse : string -> Ast.module_
(** @raise Parse_error on malformed input. *)
