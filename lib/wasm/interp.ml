(** A complete interpreter for WebAssembly modules (MVP).

    Executes the flat instruction representation directly: for every
    function, the matching [End] (and [Else]) of each structured
    instruction is pre-computed once, and execution proceeds with an
    explicit program counter, value stack and label stack.

    Host functions (the mechanism by which Wasabi's low-level hooks are
    provided) are plain OCaml closures over value lists. *)

open Types
open Ast

exception Exhaustion of string
(** Raised when the configured fuel (instruction budget) runs out. *)

exception Link_error of string
(** Raised during instantiation: missing or mismatching imports, failing
    segment bounds, ... *)

let link_error fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

type func_inst =
  | Wasm_func of int * instance  (** index into [instance.code], closing instance *)
  | Host_func of host_func

and host_func = {
  h_type : func_type;
  h_name : string;
  h_fn : Value.t list -> Value.t list;
}

and table_inst = {
  mutable t_elems : func_inst option array;
  t_max : int option;
}

and global_inst = {
  g_type : global_type;
  mutable g_value : Value.t;
}

and extern =
  | Extern_func of func_inst
  | Extern_table of table_inst
  | Extern_memory of Memory.t
  | Extern_global of global_inst

(** Pre-computed jump targets of one function body. *)
and jump_info = {
  end_of : int array;  (** for Block/Loop/If at pc, index of matching End *)
  else_of : int array;  (** for If at pc, index of Else, or -1 *)
}

and code = {
  c_func : Ast.func;
  c_type : func_type;
  c_body : instr array;
  c_jumps : jump_info;
}

and instance = {
  inst_module : module_;
  inst_types : func_type array;
  mutable inst_funcs : func_inst array;
  mutable inst_code : code array;
  mutable inst_table : table_inst option;
  mutable inst_memory : Memory.t option;
  mutable inst_globals : global_inst array;
  mutable inst_exports : (string * extern) list;
  mutable fuel : int;  (** remaining instruction budget *)
  mutable steps : int;  (** total instructions executed *)
  mutable call_depth : int;
}

(** Wasm implementations limit call depth; ours traps with the spec's
    "call stack exhausted" well before the OCaml stack overflows. *)
let max_call_depth = 10_000

let func_type_of = function
  | Wasm_func (idx, inst) -> inst.inst_code.(idx).c_type
  | Host_func h -> h.h_type

(** Compute matching [End]/[Else] indices for every structured instruction. *)
let compute_jumps (body : instr array) : jump_info =
  let n = Array.length body in
  let end_of = Array.make n (-1) in
  let else_of = Array.make n (-1) in
  let stack = ref [] in
  for pc = 0 to n - 1 do
    match body.(pc) with
    | Block _ | Loop _ | If _ -> stack := pc :: !stack
    | Else ->
      (match !stack with
       | open_pc :: _ -> else_of.(open_pc) <- pc
       | [] -> raise (Decode.Decode_error "else without open block"))
    | End ->
      (match !stack with
       | open_pc :: rest ->
         end_of.(open_pc) <- pc;
         stack := rest
       | [] -> raise (Decode.Decode_error "unbalanced end"))
    | _ -> ()
  done;
  if !stack <> [] then raise (Decode.Decode_error "unclosed block");
  { end_of; else_of }

(** {1 Execution} *)

type label = {
  l_is_loop : bool;
  l_start : int;  (** pc of the block instruction *)
  l_end : int;  (** pc of the matching End *)
  l_height : int;  (** value stack height at entry *)
  l_arity : int;
}

type stack = {
  mutable values : Value.t list;  (** head is the top *)
  mutable size : int;
}

let push st v =
  st.values <- v :: st.values;
  st.size <- st.size + 1

let pop st =
  match st.values with
  | v :: rest ->
    st.values <- rest;
    st.size <- st.size - 1;
    v
  | [] -> raise (Value.Trap "value stack underflow (engine bug)")

let pop_n st n = List.init n (fun _ -> pop st) |> List.rev

(** Drop values until the stack has height [h]. *)
let shrink_to st h =
  while st.size > h do
    ignore (pop st)
  done

let pop_i32 st = Value.as_i32 (pop st)

let default_fuel = max_int

let use_fuel inst =
  inst.steps <- inst.steps + 1;
  if inst.fuel <= 0 then raise (Exhaustion "out of fuel");
  inst.fuel <- inst.fuel - 1

let rec invoke (f : func_inst) (args : Value.t list) : Value.t list =
  match f with
  | Host_func h -> h.h_fn args
  | Wasm_func (idx, inst) ->
    let code = inst.inst_code.(idx) in
    let n_args = List.length code.c_type.params in
    if List.length args <> n_args then
      raise (Value.Trap "argument count mismatch");
    if inst.call_depth >= max_call_depth then raise (Value.Trap "call stack exhausted");
    let locals =
      Array.of_list (args @ List.map Value.default code.c_func.locals)
    in
    inst.call_depth <- inst.call_depth + 1;
    Fun.protect
      ~finally:(fun () -> inst.call_depth <- inst.call_depth - 1)
      (fun () -> exec_body inst code locals)

and exec_body inst code locals : Value.t list =
  let body = code.c_body in
  let jumps = code.c_jumps in
  let n = Array.length body in
  let arity = List.length code.c_type.results in
  let st = { values = []; size = 0 } in
  let labels = ref ([] : label list) in
  let pc = ref 0 in
  let result = ref None in
  (* Take the branch with relative label [k] from the current position. *)
  let branch k =
    let rec nth_label k = function
      | [] -> None
      | l :: rest -> if k = 0 then Some (l, rest) else nth_label (k - 1) rest
    in
    match nth_label k !labels with
    | None ->
      (* branching past all labels targets the function itself *)
      result := Some (pop_n st arity)
    | Some (l, below) ->
      if l.l_is_loop then begin
        (* a loop label has no results in the MVP *)
        shrink_to st l.l_height;
        labels := l :: below;
        pc := l.l_start + 1
      end
      else begin
        let saved = pop_n st l.l_arity in
        shrink_to st l.l_height;
        List.iter (push st) saved;
        labels := below;
        pc := l.l_end + 1
      end
  in
  let memory () =
    match inst.inst_memory with
    | Some m -> m
    | None -> raise (Value.Trap "no memory")
  in
  while !result = None do
    if !pc >= n then
      (* implicit end of the function body *)
      result := Some (pop_n st arity)
    else begin
      use_fuel inst;
      let i = body.(!pc) in
      (match i with
       | Nop -> incr pc
       | Unreachable -> raise (Value.Trap "unreachable executed")
       | Block bt ->
         labels :=
           { l_is_loop = false; l_start = !pc; l_end = jumps.end_of.(!pc);
             l_height = st.size; l_arity = (match bt with None -> 0 | Some _ -> 1) }
           :: !labels;
         incr pc
       | Loop _ ->
         labels :=
           { l_is_loop = true; l_start = !pc; l_end = jumps.end_of.(!pc);
             l_height = st.size; l_arity = 0 }
           :: !labels;
         incr pc
       | If bt ->
         let cond = pop_i32 st in
         let lbl =
           { l_is_loop = false; l_start = !pc; l_end = jumps.end_of.(!pc);
             l_height = st.size; l_arity = (match bt with None -> 0 | Some _ -> 1) }
         in
         if not (Int32.equal cond 0l) then begin
           labels := lbl :: !labels;
           incr pc
         end
         else begin
           let else_pc = jumps.else_of.(!pc) in
           if else_pc >= 0 then begin
             labels := lbl :: !labels;
             pc := else_pc + 1
           end
           else
             (* no else: skip past the End; no label needed *)
             pc := jumps.end_of.(!pc) + 1
         end
       | Else ->
         (* falling off the then-branch: jump to the matching End *)
         (match !labels with
          | l :: _ -> pc := l.l_end
          | [] -> raise (Value.Trap "else without label (engine bug)"))
       | End ->
         (match !labels with
          | _ :: rest ->
            labels := rest;
            incr pc
          | [] -> raise (Value.Trap "end without label (engine bug)"))
       | Br k -> branch k
       | BrIf k ->
         let cond = pop_i32 st in
         if Int32.equal cond 0l then incr pc else branch k
       | BrTable (ls, d) ->
         let idx32 = pop_i32 st in
         let idx = Int64.to_int (Int64.logand (Int64.of_int32 idx32) 0xFFFFFFFFL) in
         let k = if idx < List.length ls then List.nth ls idx else d in
         branch k
       | Return -> result := Some (pop_n st arity)
       | Call fidx ->
         let callee = inst.inst_funcs.(fidx) in
         let ft = func_type_of callee in
         let args = pop_n st (List.length ft.params) in
         let results = invoke callee args in
         List.iter (push st) results;
         incr pc
       | CallIndirect tidx ->
         let expected = inst.inst_types.(tidx) in
         let i = pop_i32 st in
         let table =
           match inst.inst_table with
           | Some t -> t
           | None -> raise (Value.Trap "no table")
         in
         let i = Int64.to_int (Int64.logand (Int64.of_int32 i) 0xFFFFFFFFL) in
         if i >= Array.length table.t_elems then
           raise (Value.Trap "undefined element");
         (match table.t_elems.(i) with
          | None -> raise (Value.Trap "uninitialized element")
          | Some callee ->
            if not (equal_func_type (func_type_of callee) expected) then
              raise (Value.Trap "indirect call type mismatch");
            let args = pop_n st (List.length expected.params) in
            let results = invoke callee args in
            List.iter (push st) results);
         incr pc
       | Drop ->
         ignore (pop st);
         incr pc
       | Select ->
         let cond = pop_i32 st in
         let b = pop st in
         let a = pop st in
         push st (if Int32.equal cond 0l then b else a);
         incr pc
       | LocalGet x ->
         push st locals.(x);
         incr pc
       | LocalSet x ->
         locals.(x) <- pop st;
         incr pc
       | LocalTee x ->
         (match st.values with
          | v :: _ -> locals.(x) <- v
          | [] -> raise (Value.Trap "stack underflow (engine bug)"));
         incr pc
       | GlobalGet x ->
         push st inst.inst_globals.(x).g_value;
         incr pc
       | GlobalSet x ->
         inst.inst_globals.(x).g_value <- pop st;
         incr pc
       | Load op ->
         let addr = pop_i32 st in
         push st (Memory.load (memory ()) op addr);
         incr pc
       | Store op ->
         let v = pop st in
         let addr = pop_i32 st in
         Memory.store (memory ()) op addr v;
         incr pc
       | MemorySize ->
         push st (Value.i32_of_int (Memory.size_pages (memory ())));
         incr pc
       | MemoryGrow ->
         let delta = Int32.to_int (pop_i32 st) in
         push st (Value.i32_of_int (Memory.grow (memory ()) delta));
         incr pc
       | Const v ->
         push st v;
         incr pc
       | Test op ->
         let v = pop st in
         push st (Eval_numeric.eval_testop op v);
         incr pc
       | Compare op ->
         let b = pop st in
         let a = pop st in
         push st (Eval_numeric.eval_relop op a b);
         incr pc
       | Unary op ->
         let v = pop st in
         push st (Eval_numeric.eval_unop op v);
         incr pc
       | Binary op ->
         let b = pop st in
         let a = pop st in
         push st (Eval_numeric.eval_binop op a b);
         incr pc
       | Convert op ->
         let v = pop st in
         push st (Eval_numeric.eval_cvtop op v);
         incr pc)
    end
  done;
  match !result with Some vs -> vs | None -> assert false

(** {1 Instantiation} *)

(** Import resolution: maps (module name, item name) to an extern. *)
type imports = (string * string * extern) list

let lookup_import (imports : imports) module_name item_name =
  let rec go = function
    | [] -> link_error "unknown import %s.%s" module_name item_name
    | (m, n, ext) :: rest ->
      if String.equal m module_name && String.equal n item_name then ext else go rest
  in
  go imports

let eval_const_expr (globals : global_inst array) = function
  | [ Const v ] -> v
  | [ GlobalGet i ] -> globals.(i).g_value
  | _ -> link_error "unsupported constant expression"

(** Instantiate a module: resolve imports, allocate table/memory/globals,
    apply element and data segments, and run the start function. The
    module is assumed to be valid (run {!Validate.validate_module} first). *)
let instantiate ?(fuel = default_fuel) ~(imports : imports) (m : module_) : instance =
  let inst =
    {
      inst_module = m;
      inst_types = Array.of_list m.types;
      inst_funcs = [||];
      inst_code = [||];
      inst_table = None;
      inst_memory = None;
      inst_globals = [||];
      inst_exports = [];
      fuel;
      steps = 0;
      call_depth = 0;
    }
  in
  (* imported entities, in import order *)
  let imp_funcs = ref [] and imp_tables = ref [] and imp_mems = ref [] and imp_globals = ref [] in
  List.iter
    (fun imp ->
       let ext = lookup_import imports imp.module_name imp.item_name in
       match imp.idesc, ext with
       | FuncImport ti, Extern_func f ->
         let expected = List.nth m.types ti in
         if not (equal_func_type (func_type_of f) expected) then
           link_error "import %s.%s: function type mismatch (expected %s, got %s)"
             imp.module_name imp.item_name
             (string_of_func_type expected)
             (string_of_func_type (func_type_of f));
         imp_funcs := f :: !imp_funcs
       | TableImport _, Extern_table t -> imp_tables := t :: !imp_tables
       | MemoryImport _, Extern_memory mem -> imp_mems := mem :: !imp_mems
       | GlobalImport gt, Extern_global g ->
         if g.g_type <> gt then link_error "import %s.%s: global type mismatch" imp.module_name imp.item_name;
         imp_globals := g :: !imp_globals
       | _, _ -> link_error "import %s.%s: kind mismatch" imp.module_name imp.item_name)
    m.imports;
  let imp_funcs = List.rev !imp_funcs in
  let imp_tables = List.rev !imp_tables in
  let imp_mems = List.rev !imp_mems in
  let imp_globals = List.rev !imp_globals in
  (* code for module-defined functions *)
  inst.inst_code <-
    Array.of_list
      (List.map
         (fun f ->
            let body = Array.of_list f.body in
            {
              c_func = f;
              c_type = List.nth m.types f.ftype;
              c_body = body;
              c_jumps = compute_jumps body;
            })
         m.funcs);
  inst.inst_funcs <-
    Array.of_list
      (imp_funcs @ List.mapi (fun i _ -> Wasm_func (i, inst)) m.funcs);
  (* table *)
  inst.inst_table <-
    (match imp_tables, m.tables with
     | [ t ], [] -> Some t
     | [], [ tt ] ->
       Some
         {
           t_elems = Array.make tt.tbl_limits.lim_min None;
           t_max = tt.tbl_limits.lim_max;
         }
     | [], [] -> None
     | _ -> link_error "multiple tables");
  (* memory *)
  inst.inst_memory <-
    (match imp_mems, m.memories with
     | [ mem ], [] -> Some mem
     | [], [ mt ] ->
       Some (Memory.create ~min_pages:mt.mem_limits.lim_min ~max_pages:mt.mem_limits.lim_max)
     | [], [] -> None
     | _ -> link_error "multiple memories");
  (* globals: imported first, then defined (initialisers may only refer to
     imported globals, which are already available) *)
  let imported_globals = Array.of_list imp_globals in
  let defined_globals =
    List.map
      (fun g -> { g_type = g.gtype; g_value = eval_const_expr imported_globals g.ginit })
      m.globals
  in
  inst.inst_globals <- Array.append imported_globals (Array.of_list defined_globals);
  (* element segments *)
  List.iter
    (fun e ->
       let table =
         match inst.inst_table with
         | Some t -> t
         | None -> link_error "element segment without table"
       in
       let offset = Int32.to_int (Value.as_i32 (eval_const_expr imported_globals e.eoffset)) in
       if offset < 0 || offset + List.length e.einit > Array.length table.t_elems then
         link_error "element segment out of bounds";
       List.iteri
         (fun i fidx -> table.t_elems.(offset + i) <- Some inst.inst_funcs.(fidx))
         e.einit)
    m.elems;
  (* data segments *)
  List.iter
    (fun d ->
       let mem =
         match inst.inst_memory with
         | Some mem -> mem
         | None -> link_error "data segment without memory"
       in
       let offset = Int32.to_int (Value.as_i32 (eval_const_expr imported_globals d.doffset)) in
       (try Memory.store_string mem ~at:offset d.dinit
        with Value.Trap _ -> link_error "data segment out of bounds"))
    m.datas;
  inst.inst_exports <-
    List.map
      (fun e ->
         let ext =
           match e.edesc with
           | FuncExport i -> Extern_func inst.inst_funcs.(i)
           | TableExport _ -> Extern_table (Option.get inst.inst_table)
           | MemoryExport _ -> Extern_memory (Option.get inst.inst_memory)
           | GlobalExport i -> Extern_global inst.inst_globals.(i)
         in
         (e.name, ext))
      m.exports;
  (match m.start with
   | None -> ()
   | Some f -> ignore (invoke inst.inst_funcs.(f) []));
  inst

(** {1 Convenience API} *)

let export inst name =
  match List.assoc_opt name inst.inst_exports with
  | Some ext -> ext
  | None -> link_error "unknown export %S" name

let export_func inst name =
  match export inst name with
  | Extern_func f -> f
  | _ -> link_error "export %S is not a function" name

let export_memory inst name =
  match export inst name with
  | Extern_memory m -> m
  | _ -> link_error "export %S is not a memory" name

let export_global inst name =
  match export inst name with
  | Extern_global g -> g
  | _ -> link_error "export %S is not a global" name

(** Call an exported function by name. *)
let invoke_export inst name args = invoke (export_func inst name) args

(** Wrap an OCaml function as an importable host function. *)
let host_func ~name ~params ~results fn =
  Extern_func (Host_func { h_type = { params; results }; h_name = name; h_fn = fn })
