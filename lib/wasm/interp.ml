(** A complete interpreter for WebAssembly modules (MVP).

    Executes the flat instruction representation directly: for every
    function, the matching [End] (and [Else]) of each structured
    instruction, [br_table] target arrays, and straight-line run lengths
    are pre-computed once, and execution proceeds with an explicit program
    counter over a preallocated, growable, array-backed operand stack
    (one per instance, shared by all frames). The dispatch loop performs
    no list traversals, and fuel is accounted once per basic block rather
    than per instruction.

    Host functions (the mechanism by which Wasabi's low-level hooks are
    provided) are plain OCaml closures over value lists; values only take
    list form at that boundary and at the public {!invoke} API. *)

open Types
open Ast

(* Canonical declarations live in {!Error}; the rebindings keep the
   historical [Interp.Exhaustion] / [Interp.Link_error] names working. *)

exception Exhaustion = Error.Exhaustion
(** Raised when the configured fuel (instruction budget) runs out, or the
    call-depth limit is hit ("call stack exhausted"). *)

exception Link_error = Error.Link_error
(** Raised during instantiation: missing or mismatching imports, failing
    segment bounds, ... *)

let link_error fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

(** Pre-decoded instructions: the form the dispatch loop actually
    executes. Decoding happens once per function at instantiation time
    ({!prepare_code}) and resolves everything that the generic [Ast.instr]
    form would re-examine on every execution — operator tags ([i32.add]
    becomes its own opcode rather than [Binary (IBin (S32, Add))]), jump
    targets (absolute instruction indices instead of [End] scans),
    [br_table] targets (an [int array] with the default appended), and
    memory access shapes (width-specific opcodes carrying their static
    offset).

    Short straight-line idioms are additionally fused into
    superinstructions ([XIncrL], [XBrIfRelLL], [XF64LoadScaled], ...);
    each covers [k] original instructions and advances the program counter
    by [k], so instruction indices — the paper's code locations — are
    unchanged. Interior positions of a fused group hold {!XFusedTail} and
    are unreachable: fusion never spans a branch target. Fuel and step
    accounting are unaffected because both are batched per straight-line
    run of the *original* instruction stream. *)
type xinstr =
  | XUnreachable
  | XNop
  | XBlock of int * int  (** label target (just past the matching [End]), arity *)
  | XLoop  (** label target is the next instruction *)
  | XIf of int * int  (** no-else form: end target, arity *)
  | XIfElse of int * int * int  (** else target, end target, arity *)
  | XElse of int  (** end target (falling off the then-branch) *)
  | XEnd
  | XBr of int
  | XBrIf of int
  | XBrTable of int array  (** targets with the default appended *)
  | XReturn
  | XCall of int
  | XCallIndirect of int
  | XDrop
  | XSelect
  | XLocalGet of int
  | XLocalSet of int
  | XLocalTee of int
  | XGlobalGet of int
  | XGlobalSet of int
  | XConst of Value.t
  (* width-specific memory accesses (the int is the static offset) *)
  | XI32Load of int
  | XI64Load of int
  | XF32Load of int
  | XF64Load of int
  | XI32Store of int
  | XI64Store of int
  | XF32Store of int
  | XF64Store of int
  | XLoadGen of Ast.loadop  (** packed accesses *)
  | XStoreGen of Ast.storeop
  | XMemorySize
  | XMemoryGrow
  (* operator-resolved numerics *)
  | XI32Eqz
  | XI32Bin of Ast.ibinop
  | XI32Rel of Ast.irelop
  | XI64Bin of Ast.ibinop
  | XI64Rel of Ast.irelop
  | XF64Bin of Ast.fbinop
  | XF64Rel of Ast.frelop
  | XF64Un of Ast.funop
  | XF64ConvertI32S
  | XI32TruncF64S
  (* generic fallbacks for the long tail *)
  | XTestGen of Ast.testop
  | XCompareGen of Ast.relop
  | XUnaryGen of Ast.unop
  | XBinaryGen of Ast.binop
  | XConvertGen of Ast.cvtop
  (* fused superinstructions; the trailing comment gives the original
     sequence and its length *)
  | XI32BinLL of Ast.ibinop * int * int
      (** [local.get a; local.get b; i32.binop] (3) *)
  | XI32BinLC of Ast.ibinop * int * int32
      (** [local.get a; i32.const c; i32.binop] (3) *)
  | XI32BinSL of Ast.ibinop * int  (** [local.get b; i32.binop] (2) *)
  | XI32BinSC of Ast.ibinop * int32  (** [i32.const c; i32.binop] (2) *)
  | XF64BinLL of Ast.fbinop * int * int
      (** [local.get a; local.get b; f64.binop] (3) *)
  | XF64BinSL of Ast.fbinop * int  (** [local.get b; f64.binop] (2) *)
  | XF64BinSC of Ast.fbinop * float  (** [f64.const c; f64.binop] (2) *)
  | XIncrL of int * int32
      (** [local.get x; i32.const c; i32.add; local.set x] (4) *)
  | XBrIfRelLL of Ast.irelop * int * int * int
      (** [local.get a; local.get b; i32.relop; br_if k] (4) *)
  | XBrIfRelLC of Ast.irelop * int * int32 * int
      (** [local.get a; i32.const c; i32.relop; br_if k] (4) *)
  | XBrIfRel of Ast.irelop * int  (** [i32.relop; br_if k] (2) *)
  | XBrIfEqz of int  (** [i32.eqz; br_if k] (2) *)
  | XI32LoadScaled of int32 * int
      (** [i32.const c; i32.mul; i32.add; i32.load off] (4): address
          [base + idx*c] with both operands popped *)
  | XF64LoadScaled of int32 * int  (** same for [f64.load] *)
  | XI32LoadL of int * int  (** [local.get a; i32.load off] (2) *)
  | XF64LoadL of int * int  (** [local.get a; f64.load off] (2) *)
  | XFusedTail
      (** interior of a fused group; unreachable (traps as an engine bug) *)

(** The operand stack: a growable array with the top at [size - 1].
    Popped slots are not cleared; values they keep alive are bounded by
    the high-water mark of the stack. *)
type stack = {
  mutable data : Value.t array;
  mutable size : int;
}

(** Engine-probe instrumentation installed on one function body: a
    re-decoded, {e unfused} copy of the instruction stream (so every
    original instruction index is executed individually and can carry
    hooks) plus per-slot pre/post event closures and frame enter/exit
    events. Closures receive the frame's locals; everything else
    (instance, operand stack, static site information) is baked in when
    the probes are compiled. [None] in a slot costs one match. *)
type probe_hooks = {
  pp_body : xinstr array;
      (** unfused re-decode of the body, same indexing as [c_xbody] *)
  pp_pre : (Value.t array -> unit) option array;
      (** fired before the slot's instruction executes *)
  pp_post : (Value.t array -> unit) option array;
      (** fired after the slot's instruction completes without trapping
          and falls through; only installed on fall-through instructions *)
  pp_enter : (Value.t array -> unit) option;  (** frame entry *)
  pp_exit : (Value.t array -> unit) option;
      (** implicit fall-off function exit only; explicit [return] and
          branches to the function label fire their events via [pp_pre] *)
}

(** Registration handle of a probe controller, so snapshot/restore can
    treat probe state explicitly: [ps_capture] returns a thunk that
    re-arms exactly the probe set attached at capture time, and
    [ps_detach_all] detaches everything (used when restoring a snapshot
    that was taken with no probes attached). *)
type probe_set = {
  ps_capture : unit -> unit -> unit;
  ps_detach_all : unit -> unit;
}

type func_inst =
  | Wasm_func of int * instance  (** index into [instance.code], closing instance *)
  | Host_func of host_func

and host_func = {
  h_type : func_type;
  h_name : string;
  h_nparams : int;
      (** [List.length h_type.params], precomputed so {!call_host} never
          walks the type per call *)
  h_fn : Value.t array -> int -> Value.t list;
      (** [h_fn args off] reads its [h_nparams] arguments from
          [args.(off) .. args.(off + h_nparams - 1)]. When called through
          {!call_host} the array is the live operand-stack buffer (zero
          copies), so the function must read every argument before it
          (transitively) pushes onto any interpreter stack. *)
}

and table_inst = {
  mutable t_elems : func_inst option array;
  t_max : int option;
}

and global_inst = {
  g_type : global_type;
  mutable g_value : Value.t;
}

and extern =
  | Extern_func of func_inst
  | Extern_table of table_inst
  | Extern_memory of Memory.t
  | Extern_global of global_inst

(** Pre-computed jump targets of one function body. *)
and jump_info = {
  end_of : int array;  (** for Block/Loop/If at pc, index of matching End *)
  else_of : int array;  (** for If at pc, index of Else, or -1 *)
  max_depth : int;  (** deepest block nesting, bounds the label stack *)
}

and code = {
  c_func : Ast.func;
  c_type : func_type;
  c_body : instr array;
  c_xbody : xinstr array;
      (** pre-decoded form of [c_body], same indexing; what the dispatch
          loop executes *)
  c_jumps : jump_info;
  c_arity : int;  (** number of results *)
  c_nparams : int;
  c_local_defaults : Value.t array;  (** zero values of the declared locals *)
  c_frame_size : int;  (** params + declared locals *)
  c_br_tables : int array array;
      (** for BrTable at pc: the targets with the default appended;
          [[||]] at every other pc *)
  c_run_len : int array;
      (** instructions from pc to the next control transfer, inclusive;
          the granularity of batched fuel accounting *)
  mutable c_tier : tier_state;
  mutable c_hot : int;  (** calls observed while still on tier 0 *)
  mutable c_probe : probe_hooks option;
      (** engine probes installed on this body; frames entered while set
          run on the probed dispatch loop ([exec_probed]) regardless of
          tier state, and tier-up is suspended. [None] costs one match
          per call. *)
}

(** A compiled (tier-1) function body. Called with the frame's locals;
    operands live on the instance stack with the frame base at the
    current [size]; on normal return exactly [c_arity] results sit at
    that base (same contract as [exec_body]). *)
and compiled_body = instance -> Value.t array -> unit

and tier_state =
  | T_interp  (** not (yet) compiled; runs on the tier-0 dispatch loop *)
  | T_compiled of compiled_body
  | T_unsupported
      (** the compiler declined this body; stop counting and stay on
          tier 0 permanently *)

(** Tier-up policy installed on an instance: once a function has been
    entered [tp_threshold] times, [tp_compile] is asked for a compiled
    body ([None] marks the function unsupported). *)
and tier_policy = {
  tp_threshold : int;
  tp_compile : instance -> int -> compiled_body option;
}

and instance = {
  inst_module : module_;
  inst_types : func_type array;
  mutable inst_funcs : func_inst array;
  mutable inst_code : code array;
  mutable inst_table : table_inst option;
  mutable inst_memory : Memory.t option;
  mutable inst_globals : global_inst array;
  mutable inst_exports : (string * extern) list;
  inst_stack : stack;  (** the operand stack shared by all frames *)
  mutable fuel : int;  (** remaining instruction budget *)
  mutable steps : int;  (** total instructions executed *)
  mutable call_depth : int;
  mutable inst_prof : Obs.Profile.t option;
      (** when set, the interpreter feeds it call and per-site execution
          counts; [None] costs one match per call / per straight-line run *)
  mutable inst_tier : tier_policy option;
      (** when set, hot functions are compiled to closures and entered
          through them; [None] (the default) keeps everything on tier 0 *)
  mutable inst_gov : Governor.t option;
      (** when set, per-run budgets (deadline, growth cap, host-call
          budget) are enforced at batch boundaries / grow / host calls;
          [None] costs one match at each of those cold points *)
  mutable inst_deopt_on_fault : bool;
      (** when set, a compiled body unwound by a governor violation or
          an injected host fault is deopted back to tier 0 permanently *)
  mutable inst_triggers : (int * (unit -> unit)) list;
      (** pending step triggers, sorted by step count: each fires once
          when [steps] first reaches its threshold, checked at batch
          charge boundaries on every tier; [[]] costs one match per
          batch. The probe controller uses them for [--probe-at step=N]
          live attach/detach. *)
  mutable inst_probes : probe_set option;
      (** the probe controller registered on this instance, if any, so
          {!Snapshot} can capture and re-arm probe state explicitly *)
}

(** Wasm implementations limit call depth; ours traps with the spec's
    "call stack exhausted" well before the OCaml stack overflows. *)
let max_call_depth = 10_000

(** Environmental unwinds — governor budget violations and injected host
    faults — are not properties of the compiled code, but a body crossed
    by one may have been cut mid-block with its scratch state abandoned;
    when [inst_deopt_on_fault] is set such bodies are sent back to tier 0
    permanently rather than trusted again. *)
let is_fault_exn = function
  | Error.Governor_limit _ -> true
  | Value.Trap "injected host fault" -> true
  | _ -> false

let deopt_total =
  lazy
    (Obs.Metrics.counter "wasabi_deopt_total"
       ~help:"Compiled bodies deopted back to tier 0 after a governor violation or injected host fault")

let func_type_of = function
  | Wasm_func (idx, inst) -> inst.inst_code.(idx).c_type
  | Host_func h -> h.h_type

(** Compute matching [End]/[Else] indices for every structured instruction. *)
let compute_jumps (body : instr array) : jump_info =
  let n = Array.length body in
  let end_of = Array.make n (-1) in
  let else_of = Array.make n (-1) in
  let stack = ref [] in
  let depth = ref 0 and max_depth = ref 0 in
  for pc = 0 to n - 1 do
    match body.(pc) with
    | Block _ | Loop _ | If _ ->
      stack := pc :: !stack;
      incr depth;
      if !depth > !max_depth then max_depth := !depth
    | Else ->
      (match !stack with
       | open_pc :: _ -> else_of.(open_pc) <- pc
       | [] -> Error.decode_error ~code:"control" "else without open block")
    | End ->
      (match !stack with
       | open_pc :: rest ->
         end_of.(open_pc) <- pc;
         stack := rest;
         decr depth
       | [] -> Error.decode_error ~code:"control" "unbalanced end")
    | _ -> ()
  done;
  if !stack <> [] then Error.decode_error ~code:"control" "unclosed block";
  { end_of; else_of; max_depth = !max_depth }

let bt_arity : block_type -> int = function None -> 0 | Some _ -> 1

(** The end target of each [Else]: just past the [End] of its matching
    [If]. Shared by {!prepare_code} and {!unfused_xbody}. *)
let compute_else_end (body : instr array) (end_of : int array) : int array =
  let n = Array.length body in
  let else_end = Array.make (max n 1) 0 in
  let open_blocks = ref [] in
  for pc = 0 to n - 1 do
    match body.(pc) with
    | Block _ | Loop _ | If _ -> open_blocks := pc :: !open_blocks
    | Else ->
      (match !open_blocks with
       | open_pc :: _ -> else_end.(pc) <- end_of.(open_pc) + 1
       | [] -> ())
    | End -> (match !open_blocks with _ :: rest -> open_blocks := rest | [] -> ())
    | _ -> ()
  done;
  else_end

(** Single-instruction decode: resolve operators and jump targets. Used
    per-slot by {!prepare_code} (before fusion) and by {!unfused_xbody}
    (the probed bodies, which skip fusion entirely). *)
let decode_instr ~(end_of : int array) ~(else_of : int array)
    ~(else_end : int array) ~(br_tables : int array array) pc (i : instr) : xinstr =
  match i with
  | Unreachable -> XUnreachable
  | Nop -> XNop
  | Block bt -> XBlock (end_of.(pc) + 1, bt_arity bt)
  | Loop _ -> XLoop
  | If bt ->
    if else_of.(pc) >= 0 then XIfElse (else_of.(pc) + 1, end_of.(pc) + 1, bt_arity bt)
    else XIf (end_of.(pc) + 1, bt_arity bt)
  | Else -> XElse else_end.(pc)
  | End -> XEnd
  | Br k -> XBr k
  | BrIf k -> XBrIf k
  | BrTable _ -> XBrTable br_tables.(pc)
  | Return -> XReturn
  | Call fidx -> XCall fidx
  | CallIndirect tidx -> XCallIndirect tidx
  | Drop -> XDrop
  | Select -> XSelect
  | LocalGet x -> XLocalGet x
  | LocalSet x -> XLocalSet x
  | LocalTee x -> XLocalTee x
  | GlobalGet x -> XGlobalGet x
  | GlobalSet x -> XGlobalSet x
  | Const v -> XConst v
  | Load { lty = I32T; loffset; lpack = None; _ } -> XI32Load loffset
  | Load { lty = I64T; loffset; lpack = None; _ } -> XI64Load loffset
  | Load { lty = F32T; loffset; lpack = None; _ } -> XF32Load loffset
  | Load { lty = F64T; loffset; lpack = None; _ } -> XF64Load loffset
  | Load op -> XLoadGen op
  | Store { sty = I32T; soffset; spack = None; _ } -> XI32Store soffset
  | Store { sty = I64T; soffset; spack = None; _ } -> XI64Store soffset
  | Store { sty = F32T; soffset; spack = None; _ } -> XF32Store soffset
  | Store { sty = F64T; soffset; spack = None; _ } -> XF64Store soffset
  | Store op -> XStoreGen op
  | MemorySize -> XMemorySize
  | MemoryGrow -> XMemoryGrow
  | Test (IEqz S32) -> XI32Eqz
  | Test op -> XTestGen op
  | Compare (IRel (S32, r)) -> XI32Rel r
  | Compare (IRel (S64, r)) -> XI64Rel r
  | Compare (FRel (SF64, r)) -> XF64Rel r
  | Compare op -> XCompareGen op
  | Unary (FUn (SF64, u)) -> XF64Un u
  | Unary op -> XUnaryGen op
  | Binary (IBin (S32, op)) -> XI32Bin op
  | Binary (IBin (S64, op)) -> XI64Bin op
  | Binary (FBin (SF64, op)) -> XF64Bin op
  | Binary op -> XBinaryGen op
  | Convert F64ConvertI32S -> XF64ConvertI32S
  | Convert I32TruncF64S -> XI32TruncF64S
  | Convert op -> XConvertGen op

(** Pre-compute everything the dispatch loop needs about one function:
    side tables, and the pre-decoded (operator-resolved, partially fused)
    instruction array that execution actually runs over. *)
let prepare_code (types : func_type array) (f : Ast.func) : code =
  let body = Array.of_list f.body in
  let jumps = compute_jumps body in
  let end_of = jumps.end_of and else_of = jumps.else_of in
  let ftype = types.(f.ftype) in
  let nparams = List.length ftype.params in
  let local_defaults = Array.of_list (List.map Value.default f.locals) in
  let n = Array.length body in
  let br_tables = Array.make n [||] in
  let run_len = Array.make n 1 in
  for pc = n - 1 downto 0 do
    match body.(pc) with
    | BrTable (ls, d) ->
      let tbl = Array.make (List.length ls + 1) d in
      List.iteri (fun i k -> tbl.(i) <- k) ls;
      br_tables.(pc) <- tbl
    | If _ | Else | Br _ | BrIf _ | Return | Unreachable -> ()
    | _ -> if pc < n - 1 then run_len.(pc) <- run_len.(pc + 1) + 1
  done;
  let else_end = compute_else_end body end_of in
  (* leaders: every position a jump can target (label targets and else
     branches); a fused group must not contain one except as its head *)
  let leader = Array.make (n + 1) false in
  if n > 0 then leader.(0) <- true;
  for pc = 0 to n - 1 do
    match body.(pc) with
    | Block _ | If _ ->
      leader.(end_of.(pc) + 1) <- true;
      if else_of.(pc) >= 0 then leader.(else_of.(pc) + 1) <- true
    | Loop _ ->
      leader.(pc + 1) <- true;
      leader.(end_of.(pc) + 1) <- true
    | _ -> ()
  done;
  let decode1 pc i = decode_instr ~end_of ~else_of ~else_end ~br_tables pc i in
  (* fusion: longest window first; interior positions must not be leaders *)
  let xbody = Array.make n XNop in
  let fusible p len =
    p + len <= n
    &&
    let ok = ref true in
    for q = p + 1 to p + len - 1 do
      if leader.(q) then ok := false
    done;
    !ok
  in
  let pc = ref 0 in
  while !pc < n do
    let p = !pc in
    let fuse4 =
      if not (fusible p 4) then None
      else
        match body.(p), body.(p + 1), body.(p + 2), body.(p + 3) with
        | LocalGet x, Const (Value.I32 c), Binary (IBin (S32, Add)), LocalSet y
          when x = y ->
          Some (XIncrL (x, c))
        | LocalGet a, LocalGet b, Compare (IRel (S32, r)), BrIf k ->
          Some (XBrIfRelLL (r, a, b, k))
        | LocalGet a, Const (Value.I32 c), Compare (IRel (S32, r)), BrIf k ->
          Some (XBrIfRelLC (r, a, c, k))
        | ( Const (Value.I32 c),
            Binary (IBin (S32, Mul)),
            Binary (IBin (S32, Add)),
            Load { lty = I32T; loffset; lpack = None; _ } ) ->
          Some (XI32LoadScaled (c, loffset))
        | ( Const (Value.I32 c),
            Binary (IBin (S32, Mul)),
            Binary (IBin (S32, Add)),
            Load { lty = F64T; loffset; lpack = None; _ } ) ->
          Some (XF64LoadScaled (c, loffset))
        | _ -> None
    in
    let fuse3 () =
      if not (fusible p 3) then None
      else
        match body.(p), body.(p + 1), body.(p + 2) with
        | LocalGet a, LocalGet b, Binary (IBin (S32, op)) -> Some (XI32BinLL (op, a, b))
        | LocalGet a, Const (Value.I32 c), Binary (IBin (S32, op)) ->
          Some (XI32BinLC (op, a, c))
        | LocalGet a, LocalGet b, Binary (FBin (SF64, op)) -> Some (XF64BinLL (op, a, b))
        | _ -> None
    in
    let fuse2 () =
      if not (fusible p 2) then None
      else
        match body.(p), body.(p + 1) with
        | LocalGet b, Binary (IBin (S32, op)) -> Some (XI32BinSL (op, b))
        | Const (Value.I32 c), Binary (IBin (S32, op)) -> Some (XI32BinSC (op, c))
        | LocalGet b, Binary (FBin (SF64, op)) -> Some (XF64BinSL (op, b))
        | Const (Value.F64 c), Binary (FBin (SF64, op)) -> Some (XF64BinSC (op, c))
        | Compare (IRel (S32, r)), BrIf k -> Some (XBrIfRel (r, k))
        | Test (IEqz S32), BrIf k -> Some (XBrIfEqz k)
        | LocalGet a, Load { lty = I32T; loffset; lpack = None; _ } ->
          Some (XI32LoadL (a, loffset))
        | LocalGet a, Load { lty = F64T; loffset; lpack = None; _ } ->
          Some (XF64LoadL (a, loffset))
        | _ -> None
    in
    let fused, len =
      match fuse4 with
      | Some x -> Some x, 4
      | None ->
        (match fuse3 () with
         | Some x -> Some x, 3
         | None -> (match fuse2 () with Some x -> Some x, 2 | None -> None, 1))
    in
    (match fused with
     | Some x ->
       xbody.(p) <- x;
       for q = p + 1 to p + len - 1 do
         xbody.(q) <- XFusedTail
       done
     | None -> xbody.(p) <- decode1 p body.(p));
    pc := p + len
  done;
  {
    c_func = f;
    c_type = ftype;
    c_body = body;
    c_xbody = xbody;
    c_jumps = jumps;
    c_arity = List.length ftype.results;
    c_nparams = nparams;
    c_local_defaults = local_defaults;
    c_frame_size = nparams + Array.length local_defaults;
    c_br_tables = br_tables;
    c_run_len = run_len;
    c_tier = T_interp;
    c_hot = 0;
    c_probe = None;
  }

(** Re-decode one function body without superinstruction fusion: every
    original instruction index holds its own executable slot, so the
    probed dispatch loop can fire per-instruction events at exact code
    locations. Fuel/step accounting is unaffected (it is batched over
    [c_run_len], which fusion never changes). *)
let unfused_xbody (code : code) : xinstr array =
  let body = code.c_body in
  let end_of = code.c_jumps.end_of and else_of = code.c_jumps.else_of in
  let else_end = compute_else_end body end_of in
  Array.mapi
    (decode_instr ~end_of ~else_of ~else_end ~br_tables:code.c_br_tables)
    body

(** {1 Execution} *)

let dummy_value = Value.I32 0l

let create_stack () = { data = Array.make 256 dummy_value; size = 0 }

let grow_stack st =
  let data = Array.make (2 * Array.length st.data) dummy_value in
  Array.blit st.data 0 data 0 st.size;
  st.data <- data

(** Grow the backing array until it holds at least [cap] slots. Tier-1
    bodies reserve their whole frame up front so compiled slot accesses
    need no per-operation bounds checks. *)
let stack_reserve st cap = while Array.length st.data < cap do grow_stack st done

let push st v =
  if st.size = Array.length st.data then grow_stack st;
  Array.unsafe_set st.data st.size v;
  st.size <- st.size + 1

let pop st =
  if st.size = 0 then raise (Value.Trap "value stack underflow (engine bug)");
  st.size <- st.size - 1;
  Array.unsafe_get st.data st.size

(** Pop [n] values; the result lists them bottom-to-top (first function
    argument first). The loop below iterates in a defined order — unlike
    side-effecting pops inside [List.init], whose evaluation order the
    stdlib does not specify. *)
let pop_n st n =
  if st.size < n then raise (Value.Trap "value stack underflow (engine bug)");
  let base = st.size - n in
  let rec build i acc = if i < base then acc else build (i - 1) (st.data.(i) :: acc) in
  let vs = build (st.size - 1) [] in
  st.size <- base;
  vs

let pop_i32 st = Value.as_i32 (pop st)

let default_fuel = max_int

(** Fire every pending step trigger whose threshold has been reached.
    A trigger is removed {e before} it runs, so a trigger that attaches
    or detaches probes (or schedules further triggers) is safe. Called
    at batch charge boundaries on all tiers. *)
let rec fire_triggers inst =
  match inst.inst_triggers with
  | (at, f) :: rest when at <= inst.steps ->
    inst.inst_triggers <- rest;
    f ();
    fire_triggers inst
  | _ -> ()

let rec invoke (f : func_inst) (args : Value.t list) : Value.t list =
  match f with
  | Host_func h ->
    if List.length args <> h.h_nparams then
      raise (Value.Trap "argument count mismatch");
    h.h_fn (Array.of_list args) 0
  | Wasm_func (idx, inst) ->
    let code = inst.inst_code.(idx) in
    if List.length args <> code.c_nparams then
      raise (Value.Trap "argument count mismatch");
    let st = inst.inst_stack in
    List.iter (push st) args;
    call_wasm inst idx st;
    pop_n st code.c_arity

(** Call function [idx] of [cinst] with its arguments on top of
    [from_st]; afterwards the results are there instead. When caller and
    callee share the instance (the common case) results need no copying:
    the callee's frame base is exactly where the caller expects them. *)
and call_wasm (cinst : instance) (idx : int) (from_st : stack) : unit =
  let code = cinst.inst_code.(idx) in
  if cinst.call_depth >= max_call_depth then
    raise (Exhaustion "call stack exhausted");
  let locals = Array.make code.c_frame_size dummy_value in
  (* popping yields the last argument first: fill right to left *)
  for i = code.c_nparams - 1 downto 0 do
    locals.(i) <- pop from_st
  done;
  Array.blit code.c_local_defaults 0 locals code.c_nparams
    (Array.length code.c_local_defaults);
  let st = cinst.inst_stack in
  let base = st.size in
  cinst.call_depth <- cinst.call_depth + 1;
  (match cinst.inst_prof with None -> () | Some p -> Obs.Profile.enter p idx);
  (try enter_body cinst idx code locals with
   | e ->
     (match cinst.inst_prof with None -> () | Some p -> Obs.Profile.leave p);
     cinst.call_depth <- cinst.call_depth - 1;
     st.size <- base;
     raise e);
  (match cinst.inst_prof with None -> () | Some p -> Obs.Profile.leave p);
  cinst.call_depth <- cinst.call_depth - 1;
  if st != from_st then begin
    (* cross-instance call: move the results over *)
    for i = base to base + code.c_arity - 1 do
      push from_st st.data.(i)
    done;
    st.size <- base
  end

(** Tier dispatch: run the compiled body when one is cached, otherwise
    count the call against the instance's tier policy and compile at the
    threshold. Tier state lives on [code], so one compilation serves
    every future call. *)
and enter_body cinst (idx : int) (code : code) (locals : Value.t array) : unit =
  match code.c_probe with
  | Some ph ->
    (* engine probes force interpretation: the frame runs on the probed
       dispatch loop regardless of tier state, and tier-up counting is
       suspended until the probes are detached *)
    exec_probed cinst idx code ph locals
  | None ->
  match code.c_tier with
  | T_compiled f when not cinst.inst_deopt_on_fault ->
    (match cinst.inst_prof with
     | None -> f cinst locals
     | Some p -> Obs.Profile.time p "tier.execute" (fun () -> f cinst locals))
  | T_compiled f ->
    (* deopt-on-fault: every compiled frame on the unwind path of a
       governor violation or injected host fault goes back to tier 0 *)
    (try
       match cinst.inst_prof with
       | None -> f cinst locals
       | Some p -> Obs.Profile.time p "tier.execute" (fun () -> f cinst locals)
     with e when is_fault_exn e ->
       code.c_tier <- T_unsupported;
       Obs.Metrics.inc (Lazy.force deopt_total);
       (match cinst.inst_prof with None -> () | Some p -> Obs.Profile.count p "tier.deopt");
       raise e)
  | T_unsupported -> exec_body cinst idx code locals
  | T_interp ->
    (match cinst.inst_tier with
     | None -> exec_body cinst idx code locals
     | Some tp ->
       let hot = code.c_hot + 1 in
       code.c_hot <- hot;
       if hot < tp.tp_threshold then exec_body cinst idx code locals
       else begin
         let compiled =
           match cinst.inst_prof with
           | None -> tp.tp_compile cinst idx
           | Some p -> Obs.Profile.time p "tier.compile" (fun () -> tp.tp_compile cinst idx)
         in
         match compiled with
         | Some f ->
           code.c_tier <- T_compiled f;
           (match cinst.inst_prof with
            | None -> f cinst locals
            | Some p ->
              Obs.Profile.count p "tier.up";
              Obs.Profile.time p "tier.execute" (fun () -> f cinst locals))
         | None ->
           code.c_tier <- T_unsupported;
           (match cinst.inst_prof with
            | None -> ()
            | Some p -> Obs.Profile.count p "tier.unsupported");
           exec_body cinst idx code locals
       end)

(* The arguments are handed to the host function in place: the stack is
   shrunk below them first, and [h_fn] reads them straight out of the
   buffer at the old base — no list, no copy. Values above [size] are
   dead-but-intact until something pushes, and the [h_fn] contract
   (see {!host_func}) requires all reads to happen before that. *)
and call_host (inst : instance) (h : host_func) (st : stack) : unit =
  (match inst.inst_gov with None -> () | Some g -> Governor.count_host_call g);
  if st.size < h.h_nparams then
    raise (Value.Trap "value stack underflow (engine bug)");
  let base = st.size - h.h_nparams in
  st.size <- base;
  match h.h_fn st.data base with
  | [] -> ()
  | results -> List.iter (push st) results

(** Run [code] with the operand base at the current stack size; on normal
    exit exactly [c_arity] results sit at that base. *)
and exec_body inst (fid : int) (code : code) (locals : Value.t array) : unit =
  let xbody = code.c_xbody in
  let run_len = code.c_run_len in
  let n = Array.length xbody in
  let arity = code.c_arity in
  let st = inst.inst_stack in
  let base = st.size in
  (* label stack: flat [| target; height; arity; is_loop |] records *)
  let lbl = Array.make (4 * code.c_jumps.max_depth) 0 in
  let nlbl = ref 0 in
  let pc = ref 0 in
  let running = ref true in
  (* fuel and steps are charged for a whole straight-line run at once:
     positions below [charged_upto] on the current run are paid for; any
     control transfer resets it so the target's run is charged afresh *)
  let charged_upto = ref 0 in
  let mem = inst.inst_memory in
  let memory () =
    match mem with Some m -> m | None -> raise (Value.Trap "no memory")
  in
  let ret () =
    if st.size - arity < base then
      raise (Value.Trap "value stack underflow (engine bug)");
    Array.blit st.data (st.size - arity) st.data base arity;
    st.size <- base + arity;
    running := false
  in
  let push_label target height larity is_loop =
    let o = 4 * !nlbl in
    lbl.(o) <- target;
    lbl.(o + 1) <- height;
    lbl.(o + 2) <- larity;
    lbl.(o + 3) <- is_loop;
    incr nlbl
  in
  (* Take the branch with relative label [k] from the current position. *)
  let branch k =
    if k >= !nlbl then ret ()
    else begin
      let o = 4 * (!nlbl - 1 - k) in
      let height = lbl.(o + 1) and larity = lbl.(o + 2) in
      Array.blit st.data (st.size - larity) st.data height larity;
      st.size <- height + larity;
      (* a loop label survives its branch, a block label does not *)
      nlbl := !nlbl - k - 1 + lbl.(o + 3);
      pc := lbl.(o);
      charged_upto := 0
    end
  in
  while !running do
    if !pc >= n then
      (* implicit end of the function body *)
      ret ()
    else begin
      if !pc >= !charged_upto then begin
        if inst.fuel <= 0 then raise (Exhaustion "out of fuel");
        (match inst.inst_gov with None -> () | Some g -> Governor.check_batch g);
        let k = Array.unsafe_get run_len !pc in
        inst.steps <- inst.steps + k;
        inst.fuel <- inst.fuel - k;
        charged_upto := !pc + k;
        (match inst.inst_prof with
         | None -> ()
         | Some p -> Obs.Profile.bump_run p ~fid ~body_len:n ~pc:!pc ~len:k);
        match inst.inst_triggers with
        | [] -> ()
        | _ -> fire_triggers inst
      end;
      match Array.unsafe_get xbody !pc with
      | XNop -> incr pc
      | XUnreachable -> raise (Value.Trap "unreachable executed")
      | XBlock (target, larity) ->
        push_label target st.size larity 0;
        incr pc
      | XLoop ->
        (* a loop label has no results in the MVP *)
        push_label (!pc + 1) st.size 0 1;
        incr pc
      | XIf (end_target, larity) ->
        let cond = pop_i32 st in
        if not (Int32.equal cond 0l) then begin
          push_label end_target st.size larity 0;
          incr pc
        end
        else begin
          (* no else: skip past the End; no label needed *)
          pc := end_target;
          charged_upto := 0
        end
      | XIfElse (else_target, end_target, larity) ->
        let cond = pop_i32 st in
        push_label end_target st.size larity 0;
        if not (Int32.equal cond 0l) then incr pc
        else begin
          pc := else_target;
          charged_upto := 0
        end
      | XElse end_target ->
        (* falling off the then-branch: the block is done *)
        if !nlbl = 0 then raise (Value.Trap "else without label (engine bug)");
        decr nlbl;
        pc := end_target;
        charged_upto := 0
      | XEnd ->
        if !nlbl = 0 then raise (Value.Trap "end without label (engine bug)");
        decr nlbl;
        incr pc
      | XBr k -> branch k
      | XBrIf k ->
        let cond = pop_i32 st in
        if Int32.equal cond 0l then incr pc else branch k
      | XBrTable tbl ->
        let idx32 = pop_i32 st in
        let idx = Int64.to_int (Int64.logand (Int64.of_int32 idx32) 0xFFFFFFFFL) in
        let last = Array.length tbl - 1 in
        branch (if idx < last then tbl.(idx) else tbl.(last))
      | XReturn -> ret ()
      | XCall fidx ->
        (match inst.inst_funcs.(fidx) with
         | Wasm_func (j, ci) -> call_wasm ci j st
         | Host_func h -> call_host inst h st);
        incr pc
      | XCallIndirect tidx ->
        let expected = inst.inst_types.(tidx) in
        let i = pop_i32 st in
        let table =
          match inst.inst_table with
          | Some t -> t
          | None -> raise (Value.Trap "no table")
        in
        let i = Int64.to_int (Int64.logand (Int64.of_int32 i) 0xFFFFFFFFL) in
        if i >= Array.length table.t_elems then
          raise (Value.Trap "undefined element");
        (match table.t_elems.(i) with
         | None -> raise (Value.Trap "uninitialized element")
         | Some callee ->
           if not (equal_func_type (func_type_of callee) expected) then
             raise (Value.Trap "indirect call type mismatch");
           (match callee with
            | Wasm_func (j, ci) -> call_wasm ci j st
            | Host_func h -> call_host inst h st));
        incr pc
      | XDrop ->
        ignore (pop st);
        incr pc
      | XSelect ->
        let cond = pop_i32 st in
        let b = pop st in
        let a = pop st in
        push st (if Int32.equal cond 0l then b else a);
        incr pc
      | XLocalGet x ->
        push st locals.(x);
        incr pc
      | XLocalSet x ->
        locals.(x) <- pop st;
        incr pc
      | XLocalTee x ->
        if st.size = 0 then raise (Value.Trap "stack underflow (engine bug)");
        locals.(x) <- st.data.(st.size - 1);
        incr pc
      | XGlobalGet x ->
        push st inst.inst_globals.(x).g_value;
        incr pc
      | XGlobalSet x ->
        inst.inst_globals.(x).g_value <- pop st;
        incr pc
      | XConst v ->
        push st v;
        incr pc
      | XI32Load off ->
        push st (Value.I32 (Memory.load_i32 (memory ()) (pop_i32 st) off));
        incr pc
      | XI64Load off ->
        push st (Value.I64 (Memory.load_i64 (memory ()) (pop_i32 st) off));
        incr pc
      | XF32Load off ->
        push st (Value.F32 (Memory.load_f32_bits (memory ()) (pop_i32 st) off));
        incr pc
      | XF64Load off ->
        push st (Value.F64 (Memory.load_f64 (memory ()) (pop_i32 st) off));
        incr pc
      | XI32Store off ->
        let v = pop_i32 st in
        let addr = pop_i32 st in
        Memory.store_i32 (memory ()) addr off v;
        incr pc
      | XI64Store off ->
        let v = Value.as_i64 (pop st) in
        let addr = pop_i32 st in
        Memory.store_i64 (memory ()) addr off v;
        incr pc
      | XF32Store off ->
        let v = Value.as_f32_bits (pop st) in
        let addr = pop_i32 st in
        Memory.store_f32_bits (memory ()) addr off v;
        incr pc
      | XF64Store off ->
        let v = Value.as_f64 (pop st) in
        let addr = pop_i32 st in
        Memory.store_f64 (memory ()) addr off v;
        incr pc
      | XLoadGen op ->
        let addr = pop_i32 st in
        push st (Memory.load (memory ()) op addr);
        incr pc
      | XStoreGen op ->
        let v = pop st in
        let addr = pop_i32 st in
        Memory.store (memory ()) op addr v;
        incr pc
      | XMemorySize ->
        push st (Value.i32_of_int (Memory.size_pages (memory ())));
        incr pc
      | XMemoryGrow ->
        let delta = Int32.to_int (pop_i32 st) in
        let old =
          match inst.inst_gov with
          | None -> Memory.grow (memory ()) delta
          | Some g -> Governor.governed_grow g (memory ()) delta
        in
        push st (Value.i32_of_int old);
        incr pc
      | XI32Eqz ->
        push st (Value.i32_of_bool (Int32.equal (pop_i32 st) 0l));
        incr pc
      | XI32Bin op ->
        let b = pop_i32 st in
        let a = pop_i32 st in
        push st (Value.I32 (Eval_numeric.ibinop_i32 op a b));
        incr pc
      | XI32Rel r ->
        let b = pop_i32 st in
        let a = pop_i32 st in
        push st (Value.i32_of_bool (Eval_numeric.irelop_impl_i32 r a b));
        incr pc
      | XI64Bin op ->
        let b = Value.as_i64 (pop st) in
        let a = Value.as_i64 (pop st) in
        push st (Value.I64 (Eval_numeric.ibinop_i64 op a b));
        incr pc
      | XI64Rel r ->
        let b = Value.as_i64 (pop st) in
        let a = Value.as_i64 (pop st) in
        push st (Value.i32_of_bool (Eval_numeric.irelop_impl_i64 r a b));
        incr pc
      | XF64Bin op ->
        let b = Value.as_f64 (pop st) in
        let a = Value.as_f64 (pop st) in
        push st (Value.F64 (Eval_numeric.fbinop_impl op a b));
        incr pc
      | XF64Rel r ->
        let b = Value.as_f64 (pop st) in
        let a = Value.as_f64 (pop st) in
        push st (Value.i32_of_bool (Eval_numeric.frelop_impl r a b));
        incr pc
      | XF64Un u ->
        push st (Value.F64 (Eval_numeric.funop_impl u (Value.as_f64 (pop st))));
        incr pc
      | XF64ConvertI32S ->
        push st (Value.F64 (Int32.to_float (pop_i32 st)));
        incr pc
      | XI32TruncF64S ->
        push st (Value.I32 (Value.Cvt.i32_trunc_s (Value.as_f64 (pop st))));
        incr pc
      | XTestGen op ->
        let v = pop st in
        push st (Eval_numeric.eval_testop op v);
        incr pc
      | XCompareGen op ->
        let b = pop st in
        let a = pop st in
        push st (Eval_numeric.eval_relop op a b);
        incr pc
      | XUnaryGen op ->
        let v = pop st in
        push st (Eval_numeric.eval_unop op v);
        incr pc
      | XBinaryGen op ->
        let b = pop st in
        let a = pop st in
        push st (Eval_numeric.eval_binop op a b);
        incr pc
      | XConvertGen op ->
        let v = pop st in
        push st (Eval_numeric.eval_cvtop op v);
        incr pc
      (* fused superinstructions: pc advances by the original length *)
      | XI32BinLL (op, a, b) ->
        push st
          (Value.I32
             (Eval_numeric.ibinop_i32 op
                (Value.as_i32 locals.(a))
                (Value.as_i32 locals.(b))));
        pc := !pc + 3
      | XI32BinLC (op, a, c) ->
        push st (Value.I32 (Eval_numeric.ibinop_i32 op (Value.as_i32 locals.(a)) c));
        pc := !pc + 3
      | XI32BinSL (op, b) ->
        let a = pop_i32 st in
        push st (Value.I32 (Eval_numeric.ibinop_i32 op a (Value.as_i32 locals.(b))));
        pc := !pc + 2
      | XI32BinSC (op, c) ->
        let a = pop_i32 st in
        push st (Value.I32 (Eval_numeric.ibinop_i32 op a c));
        pc := !pc + 2
      | XF64BinLL (op, a, b) ->
        push st
          (Value.F64
             (Eval_numeric.fbinop_impl op
                (Value.as_f64 locals.(a))
                (Value.as_f64 locals.(b))));
        pc := !pc + 3
      | XF64BinSL (op, b) ->
        let a = Value.as_f64 (pop st) in
        push st (Value.F64 (Eval_numeric.fbinop_impl op a (Value.as_f64 locals.(b))));
        pc := !pc + 2
      | XF64BinSC (op, c) ->
        let a = Value.as_f64 (pop st) in
        push st (Value.F64 (Eval_numeric.fbinop_impl op a c));
        pc := !pc + 2
      | XIncrL (x, c) ->
        locals.(x) <- Value.I32 (Int32.add (Value.as_i32 locals.(x)) c);
        pc := !pc + 4
      | XBrIfRelLL (r, a, b, k) ->
        if
          Eval_numeric.irelop_impl_i32 r
            (Value.as_i32 locals.(a))
            (Value.as_i32 locals.(b))
        then branch k
        else pc := !pc + 4
      | XBrIfRelLC (r, a, c, k) ->
        if Eval_numeric.irelop_impl_i32 r (Value.as_i32 locals.(a)) c then branch k
        else pc := !pc + 4
      | XBrIfRel (r, k) ->
        let b = pop_i32 st in
        let a = pop_i32 st in
        if Eval_numeric.irelop_impl_i32 r a b then branch k else pc := !pc + 2
      | XBrIfEqz k ->
        if Int32.equal (pop_i32 st) 0l then branch k else pc := !pc + 2
      | XI32LoadScaled (c, off) ->
        let idx = pop_i32 st in
        let base = pop_i32 st in
        let addr = Int32.add base (Int32.mul idx c) in
        push st (Value.I32 (Memory.load_i32 (memory ()) addr off));
        pc := !pc + 4
      | XF64LoadScaled (c, off) ->
        let idx = pop_i32 st in
        let base = pop_i32 st in
        let addr = Int32.add base (Int32.mul idx c) in
        push st (Value.F64 (Memory.load_f64 (memory ()) addr off));
        pc := !pc + 4
      | XI32LoadL (a, off) ->
        push st (Value.I32 (Memory.load_i32 (memory ()) (Value.as_i32 locals.(a)) off));
        pc := !pc + 2
      | XF64LoadL (a, off) ->
        push st (Value.F64 (Memory.load_f64 (memory ()) (Value.as_i32 locals.(a)) off));
        pc := !pc + 2
      | XFusedTail ->
        raise (Value.Trap "fused instruction interior reached (engine bug)")
    end
  done

(** The probed dispatch loop: a cold copy of {!exec_body} over the
    unfused [pp_body], with per-slot pre/post event closures and frame
    enter/exit events. Kept separate so the uninstrumented hot loop pays
    {e nothing} for the probe machinery (one [c_probe] match per call in
    {!enter_body} is the entire attach cost when no probes are set).
    Semantic equality with {!exec_body} — outcome, trap identity, fuel
    cut-off, final memory/globals — is enforced by the probe-parity
    differential fuzz oracle.

    Pre events fire before the slot's instruction, post events after it
    completes without trapping; post closures are only installed on
    fall-through instructions, so a taken branch never fires one. *)
and exec_probed inst (fid : int) (code : code) (ph : probe_hooks)
    (locals : Value.t array) : unit =
  let xbody = ph.pp_body in
  let pre = ph.pp_pre and post = ph.pp_post in
  let run_len = code.c_run_len in
  let n = Array.length xbody in
  let arity = code.c_arity in
  let st = inst.inst_stack in
  let base = st.size in
  let lbl = Array.make (4 * code.c_jumps.max_depth) 0 in
  let nlbl = ref 0 in
  let pc = ref 0 in
  let running = ref true in
  let charged_upto = ref 0 in
  let mem = inst.inst_memory in
  let memory () =
    match mem with Some m -> m | None -> raise (Value.Trap "no memory")
  in
  let ret () =
    if st.size - arity < base then
      raise (Value.Trap "value stack underflow (engine bug)");
    Array.blit st.data (st.size - arity) st.data base arity;
    st.size <- base + arity;
    running := false
  in
  let push_label target height larity is_loop =
    let o = 4 * !nlbl in
    lbl.(o) <- target;
    lbl.(o + 1) <- height;
    lbl.(o + 2) <- larity;
    lbl.(o + 3) <- is_loop;
    incr nlbl
  in
  let branch k =
    if k >= !nlbl then ret ()
    else begin
      let o = 4 * (!nlbl - 1 - k) in
      let height = lbl.(o + 1) and larity = lbl.(o + 2) in
      Array.blit st.data (st.size - larity) st.data height larity;
      st.size <- height + larity;
      nlbl := !nlbl - k - 1 + lbl.(o + 3);
      pc := lbl.(o);
      charged_upto := 0
    end
  in
  (match ph.pp_enter with None -> () | Some f -> f locals);
  while !running do
    if !pc >= n then begin
      (* implicit end of the function body: the only place the
         fall-off function-exit event fires (explicit [return] and
         branches to the function label fire theirs via [pp_pre]) *)
      (match ph.pp_exit with None -> () | Some f -> f locals);
      ret ()
    end
    else begin
      if !pc >= !charged_upto then begin
        if inst.fuel <= 0 then raise (Exhaustion "out of fuel");
        (match inst.inst_gov with None -> () | Some g -> Governor.check_batch g);
        let k = Array.unsafe_get run_len !pc in
        inst.steps <- inst.steps + k;
        inst.fuel <- inst.fuel - k;
        charged_upto := !pc + k;
        (match inst.inst_prof with
         | None -> ()
         | Some p -> Obs.Profile.bump_run p ~fid ~body_len:n ~pc:!pc ~len:k);
        match inst.inst_triggers with
        | [] -> ()
        | _ -> fire_triggers inst
      end;
      let at = !pc in
      (match Array.unsafe_get pre at with None -> () | Some f -> f locals);
      (match Array.unsafe_get xbody at with
       | XNop -> incr pc
       | XUnreachable -> raise (Value.Trap "unreachable executed")
       | XBlock (target, larity) ->
         push_label target st.size larity 0;
         incr pc
       | XLoop ->
         push_label (!pc + 1) st.size 0 1;
         incr pc
       | XIf (end_target, larity) ->
         let cond = pop_i32 st in
         if not (Int32.equal cond 0l) then begin
           push_label end_target st.size larity 0;
           incr pc
         end
         else begin
           pc := end_target;
           charged_upto := 0
         end
       | XIfElse (else_target, end_target, larity) ->
         let cond = pop_i32 st in
         push_label end_target st.size larity 0;
         if not (Int32.equal cond 0l) then incr pc
         else begin
           pc := else_target;
           charged_upto := 0
         end
       | XElse end_target ->
         if !nlbl = 0 then raise (Value.Trap "else without label (engine bug)");
         decr nlbl;
         pc := end_target;
         charged_upto := 0
       | XEnd ->
         if !nlbl = 0 then raise (Value.Trap "end without label (engine bug)");
         decr nlbl;
         incr pc
       | XBr k -> branch k
       | XBrIf k ->
         let cond = pop_i32 st in
         if Int32.equal cond 0l then incr pc else branch k
       | XBrTable tbl ->
         let idx32 = pop_i32 st in
         let idx = Int64.to_int (Int64.logand (Int64.of_int32 idx32) 0xFFFFFFFFL) in
         let last = Array.length tbl - 1 in
         branch (if idx < last then tbl.(idx) else tbl.(last))
       | XReturn -> ret ()
       | XCall fidx ->
         (match inst.inst_funcs.(fidx) with
          | Wasm_func (j, ci) -> call_wasm ci j st
          | Host_func h -> call_host inst h st);
         incr pc
       | XCallIndirect tidx ->
         let expected = inst.inst_types.(tidx) in
         let i = pop_i32 st in
         let table =
           match inst.inst_table with
           | Some t -> t
           | None -> raise (Value.Trap "no table")
         in
         let i = Int64.to_int (Int64.logand (Int64.of_int32 i) 0xFFFFFFFFL) in
         if i >= Array.length table.t_elems then
           raise (Value.Trap "undefined element");
         (match table.t_elems.(i) with
          | None -> raise (Value.Trap "uninitialized element")
          | Some callee ->
            if not (equal_func_type (func_type_of callee) expected) then
              raise (Value.Trap "indirect call type mismatch");
            (match callee with
             | Wasm_func (j, ci) -> call_wasm ci j st
             | Host_func h -> call_host inst h st));
         incr pc
       | XDrop ->
         ignore (pop st);
         incr pc
       | XSelect ->
         let cond = pop_i32 st in
         let b = pop st in
         let a = pop st in
         push st (if Int32.equal cond 0l then b else a);
         incr pc
       | XLocalGet x ->
         push st locals.(x);
         incr pc
       | XLocalSet x ->
         locals.(x) <- pop st;
         incr pc
       | XLocalTee x ->
         if st.size = 0 then raise (Value.Trap "stack underflow (engine bug)");
         locals.(x) <- st.data.(st.size - 1);
         incr pc
       | XGlobalGet x ->
         push st inst.inst_globals.(x).g_value;
         incr pc
       | XGlobalSet x ->
         inst.inst_globals.(x).g_value <- pop st;
         incr pc
       | XConst v ->
         push st v;
         incr pc
       | XI32Load off ->
         push st (Value.I32 (Memory.load_i32 (memory ()) (pop_i32 st) off));
         incr pc
       | XI64Load off ->
         push st (Value.I64 (Memory.load_i64 (memory ()) (pop_i32 st) off));
         incr pc
       | XF32Load off ->
         push st (Value.F32 (Memory.load_f32_bits (memory ()) (pop_i32 st) off));
         incr pc
       | XF64Load off ->
         push st (Value.F64 (Memory.load_f64 (memory ()) (pop_i32 st) off));
         incr pc
       | XI32Store off ->
         let v = pop_i32 st in
         let addr = pop_i32 st in
         Memory.store_i32 (memory ()) addr off v;
         incr pc
       | XI64Store off ->
         let v = Value.as_i64 (pop st) in
         let addr = pop_i32 st in
         Memory.store_i64 (memory ()) addr off v;
         incr pc
       | XF32Store off ->
         let v = Value.as_f32_bits (pop st) in
         let addr = pop_i32 st in
         Memory.store_f32_bits (memory ()) addr off v;
         incr pc
       | XF64Store off ->
         let v = Value.as_f64 (pop st) in
         let addr = pop_i32 st in
         Memory.store_f64 (memory ()) addr off v;
         incr pc
       | XLoadGen op ->
         let addr = pop_i32 st in
         push st (Memory.load (memory ()) op addr);
         incr pc
       | XStoreGen op ->
         let v = pop st in
         let addr = pop_i32 st in
         Memory.store (memory ()) op addr v;
         incr pc
       | XMemorySize ->
         push st (Value.i32_of_int (Memory.size_pages (memory ())));
         incr pc
       | XMemoryGrow ->
         let delta = Int32.to_int (pop_i32 st) in
         let old =
           match inst.inst_gov with
           | None -> Memory.grow (memory ()) delta
           | Some g -> Governor.governed_grow g (memory ()) delta
         in
         push st (Value.i32_of_int old);
         incr pc
       | XI32Eqz ->
         push st (Value.i32_of_bool (Int32.equal (pop_i32 st) 0l));
         incr pc
       | XI32Bin op ->
         let b = pop_i32 st in
         let a = pop_i32 st in
         push st (Value.I32 (Eval_numeric.ibinop_i32 op a b));
         incr pc
       | XI32Rel r ->
         let b = pop_i32 st in
         let a = pop_i32 st in
         push st (Value.i32_of_bool (Eval_numeric.irelop_impl_i32 r a b));
         incr pc
       | XI64Bin op ->
         let b = Value.as_i64 (pop st) in
         let a = Value.as_i64 (pop st) in
         push st (Value.I64 (Eval_numeric.ibinop_i64 op a b));
         incr pc
       | XI64Rel r ->
         let b = Value.as_i64 (pop st) in
         let a = Value.as_i64 (pop st) in
         push st (Value.i32_of_bool (Eval_numeric.irelop_impl_i64 r a b));
         incr pc
       | XF64Bin op ->
         let b = Value.as_f64 (pop st) in
         let a = Value.as_f64 (pop st) in
         push st (Value.F64 (Eval_numeric.fbinop_impl op a b));
         incr pc
       | XF64Rel r ->
         let b = Value.as_f64 (pop st) in
         let a = Value.as_f64 (pop st) in
         push st (Value.i32_of_bool (Eval_numeric.frelop_impl r a b));
         incr pc
       | XF64Un u ->
         push st (Value.F64 (Eval_numeric.funop_impl u (Value.as_f64 (pop st))));
         incr pc
       | XF64ConvertI32S ->
         push st (Value.F64 (Int32.to_float (pop_i32 st)));
         incr pc
       | XI32TruncF64S ->
         push st (Value.I32 (Value.Cvt.i32_trunc_s (Value.as_f64 (pop st))));
         incr pc
       | XTestGen op ->
         let v = pop st in
         push st (Eval_numeric.eval_testop op v);
         incr pc
       | XCompareGen op ->
         let b = pop st in
         let a = pop st in
         push st (Eval_numeric.eval_relop op a b);
         incr pc
       | XUnaryGen op ->
         let v = pop st in
         push st (Eval_numeric.eval_unop op v);
         incr pc
       | XBinaryGen op ->
         let b = pop st in
         let a = pop st in
         push st (Eval_numeric.eval_binop op a b);
         incr pc
       | XConvertGen op ->
         let v = pop st in
         push st (Eval_numeric.eval_cvtop op v);
         incr pc
       | XI32BinLL _ | XI32BinLC _ | XI32BinSL _ | XI32BinSC _ | XF64BinLL _
       | XF64BinSL _ | XF64BinSC _ | XIncrL _ | XBrIfRelLL _ | XBrIfRelLC _
       | XBrIfRel _ | XBrIfEqz _ | XI32LoadScaled _ | XF64LoadScaled _
       | XI32LoadL _ | XF64LoadL _ | XFusedTail ->
         raise (Value.Trap "fused instruction in probed body (engine bug)"));
      match Array.unsafe_get post at with None -> () | Some f -> f locals
    end
  done

(** {1 Instantiation} *)

(** Import resolution: maps (module name, item name) to an extern. *)
type imports = (string * string * extern) list

let lookup_import (imports : imports) module_name item_name =
  let rec go = function
    | [] -> link_error "unknown import %s.%s" module_name item_name
    | (m, n, ext) :: rest ->
      if String.equal m module_name && String.equal n item_name then ext else go rest
  in
  go imports

let eval_const_expr (globals : global_inst array) = function
  | [ Const v ] -> v
  | [ GlobalGet i ] -> globals.(i).g_value
  | _ -> link_error "unsupported constant expression"

(** Instantiate a module: resolve imports, allocate table/memory/globals,
    apply element and data segments, and run the start function. The
    module is assumed to be valid (run {!Validate.validate_module} first). *)
let instantiate ?(fuel = default_fuel) ?resolve_import ~(imports : imports) (m : module_) : instance =
  let inst =
    {
      inst_module = m;
      inst_types = Array.of_list m.types;
      inst_funcs = [||];
      inst_code = [||];
      inst_table = None;
      inst_memory = None;
      inst_globals = [||];
      inst_exports = [];
      inst_stack = create_stack ();
      fuel;
      steps = 0;
      call_depth = 0;
      inst_prof = None;
      inst_tier = None;
      inst_gov = None;
      inst_deopt_on_fault = false;
      inst_triggers = [];
      inst_probes = None;
    }
  in
  (* imported entities, in import order *)
  let imp_funcs = ref [] and imp_tables = ref [] and imp_mems = ref [] and imp_globals = ref [] in
  List.iteri
    (fun i imp ->
       let ext =
         (* positional resolution first (O(1) for the instrumenter's hook
            imports), then the name-keyed list as the general fallback *)
         match resolve_import with
         | None -> lookup_import imports imp.module_name imp.item_name
         | Some resolve ->
           (match resolve i imp with
            | Some ext -> ext
            | None -> lookup_import imports imp.module_name imp.item_name)
       in
       match imp.idesc, ext with
       | FuncImport ti, Extern_func f ->
         let expected = inst.inst_types.(ti) in
         if not (equal_func_type (func_type_of f) expected) then
           link_error "import %s.%s: function type mismatch (expected %s, got %s)"
             imp.module_name imp.item_name
             (string_of_func_type expected)
             (string_of_func_type (func_type_of f));
         imp_funcs := f :: !imp_funcs
       | TableImport _, Extern_table t -> imp_tables := t :: !imp_tables
       | MemoryImport _, Extern_memory mem -> imp_mems := mem :: !imp_mems
       | GlobalImport gt, Extern_global g ->
         if g.g_type <> gt then link_error "import %s.%s: global type mismatch" imp.module_name imp.item_name;
         imp_globals := g :: !imp_globals
       | _, _ -> link_error "import %s.%s: kind mismatch" imp.module_name imp.item_name)
    m.imports;
  let imp_funcs = List.rev !imp_funcs in
  let imp_tables = List.rev !imp_tables in
  let imp_mems = List.rev !imp_mems in
  let imp_globals = List.rev !imp_globals in
  (* code for module-defined functions, with all side tables precomputed *)
  inst.inst_code <- Array.of_list (List.map (prepare_code inst.inst_types) m.funcs);
  inst.inst_funcs <-
    Array.of_list
      (imp_funcs @ List.mapi (fun i _ -> Wasm_func (i, inst)) m.funcs);
  (* table *)
  inst.inst_table <-
    (match imp_tables, m.tables with
     | [ t ], [] -> Some t
     | [], [ tt ] ->
       Some
         {
           t_elems = Array.make tt.tbl_limits.lim_min None;
           t_max = tt.tbl_limits.lim_max;
         }
     | [], [] -> None
     | _ -> link_error "multiple tables");
  (* memory *)
  inst.inst_memory <-
    (match imp_mems, m.memories with
     | [ mem ], [] -> Some mem
     | [], [ mt ] ->
       Some (Memory.create ~min_pages:mt.mem_limits.lim_min ~max_pages:mt.mem_limits.lim_max)
     | [], [] -> None
     | _ -> link_error "multiple memories");
  (* globals: imported first, then defined (initialisers may only refer to
     imported globals, which are already available) *)
  let imported_globals = Array.of_list imp_globals in
  let defined_globals =
    List.map
      (fun g -> { g_type = g.gtype; g_value = eval_const_expr imported_globals g.ginit })
      m.globals
  in
  inst.inst_globals <- Array.append imported_globals (Array.of_list defined_globals);
  (* element segments *)
  List.iter
    (fun e ->
       let table =
         match inst.inst_table with
         | Some t -> t
         | None -> link_error "element segment without table"
       in
       let offset = Int32.to_int (Value.as_i32 (eval_const_expr imported_globals e.eoffset)) in
       if offset < 0 || offset + List.length e.einit > Array.length table.t_elems then
         link_error "element segment out of bounds";
       List.iteri
         (fun i fidx -> table.t_elems.(offset + i) <- Some inst.inst_funcs.(fidx))
         e.einit)
    m.elems;
  (* data segments *)
  List.iter
    (fun d ->
       let mem =
         match inst.inst_memory with
         | Some mem -> mem
         | None -> link_error "data segment without memory"
       in
       let offset = Int32.to_int (Value.as_i32 (eval_const_expr imported_globals d.doffset)) in
       (try Memory.store_string mem ~at:offset d.dinit
        with Value.Trap _ -> link_error "data segment out of bounds"))
    m.datas;
  inst.inst_exports <-
    List.map
      (fun e ->
         let ext =
           match e.edesc with
           | FuncExport i -> Extern_func inst.inst_funcs.(i)
           | TableExport _ -> Extern_table (Option.get inst.inst_table)
           | MemoryExport _ -> Extern_memory (Option.get inst.inst_memory)
           | GlobalExport i -> Extern_global inst.inst_globals.(i)
         in
         (e.name, ext))
      m.exports;
  (match m.start with
   | None -> ()
   | Some f -> ignore (invoke inst.inst_funcs.(f) []));
  inst

(** Fork a cheap copy-on-write clone of [src]: the module, type table,
    pre-decoded instruction streams and all per-function side tables
    (jump maps, br_table layouts, run lengths, local defaults) are shared
    — they are immutable after {!instantiate} — while everything mutable
    (memory, globals, table, operand stack, fuel/step accounting) is
    copied. Function references owned by [src] are remapped to the fork,
    so calls inside the fork execute against the fork's state.

    The fork starts de-tiered (fresh [code] records with [T_interp] /
    zero hotness) and without profiler, governor, triggers or probes:
    tier-1 closures and probed bodies close over their compile-time
    instance and must be re-established per fork (e.g. via
    [Tier1.compile_all]). [?wrap_import] substitutes imported host
    functions by overall function index — the serve layer uses it to
    rebind hook imports to the fork's own runtime. The start function is
    not re-run: the fork reproduces [src]'s current state, not a fresh
    instantiation. *)
let fork ?wrap_import (src : instance) : instance =
  let inst =
    {
      inst_module = src.inst_module;
      inst_types = src.inst_types;
      inst_funcs = [||];
      inst_code =
        Array.map (fun c -> { c with c_tier = T_interp; c_hot = 0; c_probe = None })
          src.inst_code;
      inst_table = None;
      inst_memory = Option.map Memory.clone src.inst_memory;
      inst_globals =
        Array.map (fun g -> { g_type = g.g_type; g_value = g.g_value }) src.inst_globals;
      inst_exports = [];
      inst_stack = create_stack ();
      fuel = src.fuel;
      steps = src.steps;
      call_depth = 0;
      inst_prof = None;
      inst_tier = None;
      inst_gov = None;
      inst_deopt_on_fault = src.inst_deopt_on_fault;
      inst_triggers = [];
      inst_probes = None;
    }
  in
  let remap_owner = function
    | Wasm_func (j, owner) when owner == src -> Wasm_func (j, inst)
    | f -> f
  in
  inst.inst_funcs <-
    Array.mapi
      (fun i f ->
         match f, wrap_import with
         | Host_func h, Some wrap -> Host_func (wrap i h)
         | _ -> remap_owner f)
      src.inst_funcs;
  inst.inst_table <-
    Option.map
      (fun tb ->
         { t_elems = Array.map (Option.map remap_owner) tb.t_elems; t_max = tb.t_max })
      src.inst_table;
  inst.inst_exports <-
    List.map
      (fun e ->
         let ext =
           match e.edesc with
           | FuncExport i -> Extern_func inst.inst_funcs.(i)
           | TableExport _ -> Extern_table (Option.get inst.inst_table)
           | MemoryExport _ -> Extern_memory (Option.get inst.inst_memory)
           | GlobalExport i -> Extern_global inst.inst_globals.(i)
         in
         (e.name, ext))
      src.inst_module.exports;
  inst

(** {1 Convenience API} *)

let set_profiler inst p = inst.inst_prof <- p
let set_governor inst g = inst.inst_gov <- g
let set_deopt_on_fault inst b = inst.inst_deopt_on_fault <- b

(** Install (or remove) a tier-up policy. Cached compiled bodies and hot
    counts are discarded so a policy change takes effect from the next
    call — in particular [set_tier inst None] is a full deopt back to
    the reference interpreter. *)
let set_tier inst policy =
  inst.inst_tier <- policy;
  Array.iter
    (fun c ->
       c.c_tier <- T_interp;
       c.c_hot <- 0)
    inst.inst_code

(** {1 Engine probes}

    Attach/detach of hooked bodies on defined functions. Indexing is by
    {e defined}-function index (the [inst_code] index), not the original
    module function index — the layer that owns the import space
    ([Wasabi.Runtime.Probe]) translates. *)

(** Install a probed body on defined function [j]. The function deopts:
    any compiled tier-1 closure is discarded and tier-up counting is
    suspended (the probed dispatch loop runs instead) until
    {!unprobe_function}. Takes effect at the next entry into the
    function; frames already on the stack finish on the code they
    entered with. *)
let probe_function inst j (ph : probe_hooks) =
  let c = inst.inst_code.(j) in
  c.c_probe <- Some ph;
  c.c_tier <- T_interp;
  c.c_hot <- 0

(** Remove the probed body from defined function [j]. The hotness
    counter restarts from zero, so the function re-tiers naturally under
    whatever tier policy is installed. *)
let unprobe_function inst j =
  let c = inst.inst_code.(j) in
  c.c_probe <- None;
  c.c_hot <- 0

(** Register [f] to run once when [inst.steps] first reaches [at].
    Triggers are checked at batch charge boundaries on every tier
    (tier 0, probed tier 0 and tier-1 prologues), so they fire within
    one basic block of the requested step count. *)
let add_step_trigger inst ~at f =
  let rec ins = function
    | [] -> [ (at, f) ]
    | (a, _) as hd :: tl when a <= at -> hd :: ins tl
    | rest -> (at, f) :: rest
  in
  inst.inst_triggers <- ins inst.inst_triggers;
  (* already past the threshold: fire on the spot rather than never *)
  if inst.steps >= at then fire_triggers inst

let clear_step_triggers inst = inst.inst_triggers <- []

(** Register the snapshot-facing view of an attached probe controller.
    [Snapshot.capture] uses [ps_capture] to record a re-arm thunk and
    [Snapshot.restore] uses [ps_detach_all] when restoring a snapshot
    that predates any probes. *)
let set_probes inst ps = inst.inst_probes <- ps

let export inst name =
  match List.assoc_opt name inst.inst_exports with
  | Some ext -> ext
  | None -> link_error "unknown export %S" name

let export_func inst name =
  match export inst name with
  | Extern_func f -> f
  | _ -> link_error "export %S is not a function" name

let export_memory inst name =
  match export inst name with
  | Extern_memory m -> m
  | _ -> link_error "export %S is not a memory" name

let export_global inst name =
  match export inst name with
  | Extern_global g -> g
  | _ -> link_error "export %S is not a global" name

(** Call an exported function by name. *)
let invoke_export inst name args = invoke (export_func inst name) args

(** Wrap an OCaml function as an importable host function. The wrapper
    copies the argument slice into a list before calling [fn], so [fn]
    may re-enter the interpreter freely. *)
let host_func ~name ~params ~results fn =
  let n = List.length params in
  let h_fn args off =
    let rec build i acc = if i < 0 then acc else build (i - 1) (args.(off + i) :: acc) in
    fn (build (n - 1) [])
  in
  Extern_func (Host_func { h_type = { params; results }; h_name = name; h_nparams = n; h_fn })

(** Array-ABI host function: [fn] receives the interpreter's operand-stack
    buffer and the offset of its first argument directly — zero per-call
    allocation. [fn] must read all its arguments before (transitively)
    pushing onto any interpreter stack; see {!type:host_func}. *)
let host_func_raw ~name ~params ~results fn =
  Extern_func
    (Host_func
       { h_type = { params; results }; h_name = name; h_nparams = List.length params; h_fn = fn })
