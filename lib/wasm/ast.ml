(** Abstract syntax of WebAssembly modules (MVP).

    Function bodies are *flat* instruction sequences in which [Block],
    [Loop], [If], [Else] and [End] appear as ordinary instructions, exactly
    as in the binary format. This representation makes instrumentation
    natural: the paper's code locations are (function index, instruction
    index) pairs counting instructions linearly, including block delimiters. *)

open Types

type iunop = Clz | Ctz | Popcnt | Ext8S | Ext16S | Ext32S  (* sign-extension operators; Ext32S is i64-only *)
type funop = Abs | Neg | Sqrt | Ceil | Floor | Trunc | Nearest

type ibinop =
  | Add | Sub | Mul | DivS | DivU | RemS | RemU
  | And | Or | Xor | Shl | ShrS | ShrU | Rotl | Rotr

type fbinop = FAdd | FSub | FMul | FDiv | Min | Max | CopySign
type irelop = Eq | Ne | LtS | LtU | GtS | GtU | LeS | LeU | GeS | GeU
type frelop = FEq | FNe | FLt | FGt | FLe | FGe

type unop = IUn of isize * iunop | FUn of fsize * funop
type binop = IBin of isize * ibinop | FBin of fsize * fbinop
type testop = IEqz of isize
type relop = IRel of isize * irelop | FRel of fsize * frelop

type cvtop =
  | I32WrapI64
  | I32TruncF32S | I32TruncF32U | I32TruncF64S | I32TruncF64U
  | I64ExtendI32S | I64ExtendI32U
  | I64TruncF32S | I64TruncF32U | I64TruncF64S | I64TruncF64U
  | F32ConvertI32S | F32ConvertI32U | F32ConvertI64S | F32ConvertI64U
  | F32DemoteF64
  | F64ConvertI32S | F64ConvertI32U | F64ConvertI64S | F64ConvertI64U
  | F64PromoteF32
  | I32ReinterpretF32 | I64ReinterpretF64 | F32ReinterpretI32 | F64ReinterpretI64
  (* non-trapping float-to-int conversions (post-MVP) *)
  | I32TruncSatF32S | I32TruncSatF32U | I32TruncSatF64S | I32TruncSatF64U
  | I64TruncSatF32S | I64TruncSatF32U | I64TruncSatF64S | I64TruncSatF64U

type pack_size = Pack8 | Pack16 | Pack32
type extension = SX | ZX

type loadop = {
  lty : num_type;
  lalign : int;  (** log2 of the alignment *)
  loffset : int;
  lpack : (pack_size * extension) option;
}

type storeop = {
  sty : num_type;
  salign : int;
  soffset : int;
  spack : pack_size option;
}

(** MVP block types: no result or a single result. *)
type block_type = value_type option

type instr =
  | Unreachable
  | Nop
  | Block of block_type
  | Loop of block_type
  | If of block_type
  | Else
  | End
  | Br of int
  | BrIf of int
  | BrTable of int list * int  (** table, default *)
  | Return
  | Call of int
  | CallIndirect of int  (** type index *)
  | Drop
  | Select
  | LocalGet of int
  | LocalSet of int
  | LocalTee of int
  | GlobalGet of int
  | GlobalSet of int
  | Load of loadop
  | Store of storeop
  | MemorySize
  | MemoryGrow
  | Const of Value.t
  | Test of testop
  | Compare of relop
  | Unary of unop
  | Binary of binop
  | Convert of cvtop

type func = {
  ftype : int;  (** index into the module's type section *)
  locals : value_type list;
  body : instr list;  (** implicitly terminated by a final [End] in binary *)
}

type global = {
  gtype : global_type;
  ginit : instr list;  (** constant expression *)
}

type import_desc =
  | FuncImport of int  (** type index *)
  | TableImport of table_type
  | MemoryImport of memory_type
  | GlobalImport of global_type

type import = {
  module_name : string;
  item_name : string;
  idesc : import_desc;
}

type export_desc =
  | FuncExport of int
  | TableExport of int
  | MemoryExport of int
  | GlobalExport of int

type export = {
  name : string;
  edesc : export_desc;
}

type elem_segment = {
  etable : int;
  eoffset : instr list;  (** constant expression *)
  einit : int list;  (** function indices *)
}

type data_segment = {
  dmemory : int;
  doffset : instr list;  (** constant expression *)
  dinit : string;
}

type module_ = {
  types : func_type list;
  imports : import list;
  funcs : func list;
  tables : table_type list;
  memories : memory_type list;
  globals : global list;
  exports : export list;
  start : int option;
  elems : elem_segment list;
  datas : data_segment list;
}

let empty_module = {
  types = [];
  imports = [];
  funcs = [];
  tables = [];
  memories = [];
  globals = [];
  exports = [];
  start = None;
  elems = [];
  datas = [];
}

(** Number of imported functions: these occupy the first indices of the
    function index space. *)
let num_imported_funcs m =
  List.length (List.filter (fun i -> match i.idesc with FuncImport _ -> true | _ -> false) m.imports)

let num_imported_globals m =
  List.length (List.filter (fun i -> match i.idesc with GlobalImport _ -> true | _ -> false) m.imports)

let num_imported_tables m =
  List.length (List.filter (fun i -> match i.idesc with TableImport _ -> true | _ -> false) m.imports)

let num_imported_memories m =
  List.length (List.filter (fun i -> match i.idesc with MemoryImport _ -> true | _ -> false) m.imports)

(** Total size of the function index space. *)
let num_funcs m = num_imported_funcs m + List.length m.funcs

(** Type of the function at index [idx] of the function index space
    (imports first, then module-defined functions). *)
let func_type_at m idx =
  let n_imp = num_imported_funcs m in
  let type_idx =
    if idx < n_imp then
      let rec nth_func_import k = function
        | [] -> invalid_arg "func_type_at: import index out of range"
        | { idesc = FuncImport ti; _ } :: rest -> if k = 0 then ti else nth_func_import (k - 1) rest
        | _ :: rest -> nth_func_import k rest
      in
      nth_func_import idx m.imports
    else (List.nth m.funcs (idx - n_imp)).ftype
  in
  List.nth m.types type_idx

(** Global type at index [idx] of the global index space. *)
let global_type_at m idx =
  let n_imp = num_imported_globals m in
  if idx < n_imp then
    let rec nth_global_import k = function
      | [] -> invalid_arg "global_type_at: import index out of range"
      | { idesc = GlobalImport gt; _ } :: rest -> if k = 0 then gt else nth_global_import (k - 1) rest
      | _ :: rest -> nth_global_import k rest
    in
    nth_global_import idx m.imports
  else (List.nth m.globals (idx - n_imp)).gtype

(** Number of instructions in a module, counting block delimiters. *)
let instruction_count m =
  List.fold_left (fun acc f -> acc + List.length f.body) 0 m.funcs

(** Human-readable mnemonic of an instruction, e.g. ["i32.add"]. Used by
    hooks that receive an [op] argument and by the text format printer. *)
let string_of_instr instr =
  let nt = string_of_num_type in
  let it = function S32 -> "i32" | S64 -> "i64" in
  let ft = function SF32 -> "f32" | SF64 -> "f64" in
  match instr with
  | Unreachable -> "unreachable"
  | Nop -> "nop"
  | Block _ -> "block"
  | Loop _ -> "loop"
  | If _ -> "if"
  | Else -> "else"
  | End -> "end"
  | Br l -> Printf.sprintf "br %d" l
  | BrIf l -> Printf.sprintf "br_if %d" l
  | BrTable (ls, d) ->
    Printf.sprintf "br_table %s %d" (String.concat " " (List.map string_of_int ls)) d
  | Return -> "return"
  | Call f -> Printf.sprintf "call %d" f
  | CallIndirect t -> Printf.sprintf "call_indirect %d" t
  | Drop -> "drop"
  | Select -> "select"
  | LocalGet i -> Printf.sprintf "local.get %d" i
  | LocalSet i -> Printf.sprintf "local.set %d" i
  | LocalTee i -> Printf.sprintf "local.tee %d" i
  | GlobalGet i -> Printf.sprintf "global.get %d" i
  | GlobalSet i -> Printf.sprintf "global.set %d" i
  | Load { lty; lpack; _ } ->
    (match lpack with
     | None -> nt lty ^ ".load"
     | Some (p, e) ->
       let bits = match p with Pack8 -> "8" | Pack16 -> "16" | Pack32 -> "32" in
       let sx = match e with SX -> "_s" | ZX -> "_u" in
       nt lty ^ ".load" ^ bits ^ sx)
  | Store { sty; spack; _ } ->
    (match spack with
     | None -> nt sty ^ ".store"
     | Some p ->
       let bits = match p with Pack8 -> "8" | Pack16 -> "16" | Pack32 -> "32" in
       nt sty ^ ".store" ^ bits)
  | MemorySize -> "memory.size"
  | MemoryGrow -> "memory.grow"
  | Const v -> nt (Value.type_of v) ^ ".const"
  | Test (IEqz sz) -> it sz ^ ".eqz"
  | Compare (IRel (sz, op)) ->
    let s = match op with
      | Eq -> "eq" | Ne -> "ne" | LtS -> "lt_s" | LtU -> "lt_u" | GtS -> "gt_s"
      | GtU -> "gt_u" | LeS -> "le_s" | LeU -> "le_u" | GeS -> "ge_s" | GeU -> "ge_u"
    in
    it sz ^ "." ^ s
  | Compare (FRel (sz, op)) ->
    let s = match op with
      | FEq -> "eq" | FNe -> "ne" | FLt -> "lt" | FGt -> "gt" | FLe -> "le" | FGe -> "ge"
    in
    ft sz ^ "." ^ s
  | Unary (IUn (sz, op)) ->
    let s = match op with
      | Clz -> "clz" | Ctz -> "ctz" | Popcnt -> "popcnt"
      | Ext8S -> "extend8_s" | Ext16S -> "extend16_s" | Ext32S -> "extend32_s"
    in
    it sz ^ "." ^ s
  | Unary (FUn (sz, op)) ->
    let s = match op with
      | Abs -> "abs" | Neg -> "neg" | Sqrt -> "sqrt" | Ceil -> "ceil"
      | Floor -> "floor" | Trunc -> "trunc" | Nearest -> "nearest"
    in
    ft sz ^ "." ^ s
  | Binary (IBin (sz, op)) ->
    let s = match op with
      | Add -> "add" | Sub -> "sub" | Mul -> "mul" | DivS -> "div_s" | DivU -> "div_u"
      | RemS -> "rem_s" | RemU -> "rem_u" | And -> "and" | Or -> "or" | Xor -> "xor"
      | Shl -> "shl" | ShrS -> "shr_s" | ShrU -> "shr_u" | Rotl -> "rotl" | Rotr -> "rotr"
    in
    it sz ^ "." ^ s
  | Binary (FBin (sz, op)) ->
    let s = match op with
      | FAdd -> "add" | FSub -> "sub" | FMul -> "mul" | FDiv -> "div"
      | Min -> "min" | Max -> "max" | CopySign -> "copysign"
    in
    ft sz ^ "." ^ s
  | Convert op ->
    (match op with
     | I32WrapI64 -> "i32.wrap_i64"
     | I32TruncF32S -> "i32.trunc_f32_s" | I32TruncF32U -> "i32.trunc_f32_u"
     | I32TruncF64S -> "i32.trunc_f64_s" | I32TruncF64U -> "i32.trunc_f64_u"
     | I64ExtendI32S -> "i64.extend_i32_s" | I64ExtendI32U -> "i64.extend_i32_u"
     | I64TruncF32S -> "i64.trunc_f32_s" | I64TruncF32U -> "i64.trunc_f32_u"
     | I64TruncF64S -> "i64.trunc_f64_s" | I64TruncF64U -> "i64.trunc_f64_u"
     | F32ConvertI32S -> "f32.convert_i32_s" | F32ConvertI32U -> "f32.convert_i32_u"
     | F32ConvertI64S -> "f32.convert_i64_s" | F32ConvertI64U -> "f32.convert_i64_u"
     | F32DemoteF64 -> "f32.demote_f64"
     | F64ConvertI32S -> "f64.convert_i32_s" | F64ConvertI32U -> "f64.convert_i32_u"
     | F64ConvertI64S -> "f64.convert_i64_s" | F64ConvertI64U -> "f64.convert_i64_u"
     | F64PromoteF32 -> "f64.promote_f32"
     | I32ReinterpretF32 -> "i32.reinterpret_f32" | I64ReinterpretF64 -> "i64.reinterpret_f64"
     | F32ReinterpretI32 -> "f32.reinterpret_i32" | F64ReinterpretI64 -> "f64.reinterpret_i64"
     | I32TruncSatF32S -> "i32.trunc_sat_f32_s" | I32TruncSatF32U -> "i32.trunc_sat_f32_u"
     | I32TruncSatF64S -> "i32.trunc_sat_f64_s" | I32TruncSatF64U -> "i32.trunc_sat_f64_u"
     | I64TruncSatF32S -> "i64.trunc_sat_f32_s" | I64TruncSatF32U -> "i64.trunc_sat_f32_u"
     | I64TruncSatF64S -> "i64.trunc_sat_f64_s" | I64TruncSatF64U -> "i64.trunc_sat_f64_u")
