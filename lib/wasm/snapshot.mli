(** Instance snapshot/restore: capture everything a run can mutate —
    linear memory, globals, table entries, and interpreter bookkeeping
    (fuel, steps, call depth, operand-stack pointer, tier-up hot
    counts) — and rewind it, so one instance is safely reusable across
    adversarial runs: restore after a trap / exhaustion / governor kill
    / injected fault ≡ a fresh [instantiate], up to observable state.

    Not captured: compiled tier state (closures are pure code, and a
    deopt should survive restore) and engine attachments (profiler,
    governor, tier policy — the caller re-arms its governor).

    Capture and restore are single bulk copies: O(memory) +
    O(globals + table), no hot-path cost when unused. Each restore
    observes [wasabi_restore_seconds] in the default metrics registry. *)

type t

val capture : Interp.instance -> t
(** Snapshot the instance's mutable state, typically right after
    [instantiate] (pristine state) or before an untrusted run. *)

val restore : t -> Interp.instance -> unit
(** Rewind the instance to the captured state. Globals are written back
    into their shared records; an intervening [memory.grow] is undone. *)

val pages : t -> int
(** Size of the captured memory image in 64 KiB pages (0 if none). *)

val state_digest : Interp.instance -> string
(** Hex digest of the guest-observable state (memory contents, global
    values, table occupancy): equal digests ⇒ indistinguishable to the
    next run. For restore-idempotence checks and oracles. *)
