(** Instance snapshot/restore: capture everything a run can mutate and
    rewind it, so one instance is safely reusable across adversarial
    runs: restore after a trap / exhaustion / governor kill / injected
    fault ≡ a fresh [instantiate], up to observable state.

    {2 Restore audit}

    Exactly what [restore] puts back, and what it deliberately leaves
    alone. Anything mutable on an instance falls in one of these lists;
    when adding instance state, extend one of them.

    {b Captured and restored:}

    - linear memory contents and size (an intervening [memory.grow] is
      undone);
    - global values (written back into the shared [global_inst]
      records, which exports and cross-instance references alias);
    - table entries;
    - fuel, steps, call depth, operand-stack pointer;
    - per-function tier-up hot counts ([c_hot]) — tier-up {e pressure}
      rewinds to the snapshot point;
    - the attached probe set: capture asks the registered probe
      controller ([inst_probes]) for a re-arm thunk and restore runs
      it, so exactly the probes attached at capture time are active
      afterwards — probes attached later are detached, probes detached
      later are re-armed (fresh hit counters, same specs). If the
      snapshot predates any probe controller, restore detaches every
      probe the now-registered controller has. Probe restoration is
      {e explicit} state transfer, never an implicit survival of
      whatever happened to be attached.

    {b Deliberately not restored:}

    - compiled tier state ([c_tier]): compiled closures are pure code,
      and a deopt ([T_unsupported]) records distrust of a body that a
      restore of {e data} should not reinstate;
    - engine attachments: profiler ([inst_prof]), governor
      ([inst_gov]), tier policy ([inst_tier]), deopt-on-fault flag,
      the probe controller registration itself ([inst_probes]) — these
      are configuration, not run state; the caller re-arms its
      governor;
    - pending step triggers ([inst_triggers]): one-shot alarms keyed
      to the live [steps] counter; whoever registered them decides
      whether they still apply against the restored count;
    - host-side state (anything a host function closed over) and the
      operand-stack {e contents} above the restored pointer (dead
      slots, unobservable by construction);
    - metrics and spans already emitted — observability output is
      append-only history, not instance state.

    Capture and restore are single bulk copies: O(memory) +
    O(globals + table), no hot-path cost when unused. Each restore
    observes [wasabi_restore_seconds] in the default metrics registry. *)

type t

val capture : Interp.instance -> t
(** Snapshot the instance's mutable state, typically right after
    [instantiate] (pristine state) or before an untrusted run. *)

val restore : t -> Interp.instance -> unit
(** Rewind the instance to the captured state. Globals are written back
    into their shared records; an intervening [memory.grow] is undone.

    Restore is re-entrant across instances: the target may be a fork
    (see [Interp.fork]) of the instance the snapshot was captured from,
    and many forks may restore from one capture concurrently — the
    snapshot itself is never mutated. On a cross-instance restore,
    table entries owned by the capture source are remapped to the
    target, and the probe re-arm thunk (which operates on the source)
    is skipped: the target's probes, if any, are detached instead. *)

val pages : t -> int
(** Size of the captured memory image in 64 KiB pages (0 if none). *)

val state_digest : Interp.instance -> string
(** Hex digest of the guest-observable state (memory contents, global
    values, table occupancy): equal digests ⇒ indistinguishable to the
    next run. For restore-idempotence checks and oracles. *)
