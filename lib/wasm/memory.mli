(** Linear memory: a growable little-endian byte array sized in 64 KiB
    pages. All accesses are bounds checked and raise [Value.Trap] on
    failure. *)

type t

val page_size : int
val absolute_max_pages : int
(** 65536 — the 32-bit address space limit. *)

val create : min_pages:int -> max_pages:int option -> t
val size_pages : t -> int
val size_bytes : t -> int

val clone : t -> t
(** An independent memory with the same contents and limits; the two
    share no mutable state afterwards. *)

val grow : t -> int -> int
(** [grow t delta] grows by [delta] pages; returns the previous size in
    pages, or [-1] if the maximum would be exceeded (the Wasm failure
    convention). *)

val effective_address : t -> int32 -> int -> int -> int
(** [effective_address t base offset width]: unsigned base plus static
    offset, checked for a [width]-byte access. @raise Value.Trap when out
    of bounds. *)

(** {1 Width-specific accessors}

    The interpreter's fast path for unpacked accesses: [base] is the
    dynamic address, the [int] the instruction's static offset. All are
    bounds checked and trap like {!load}/{!store}. f32 values travel as
    their bit pattern (the [Value.F32] representation). *)

val load_i32 : t -> int32 -> int -> int32
val load_i64 : t -> int32 -> int -> int64
val load_f64 : t -> int32 -> int -> float
val load_f32_bits : t -> int32 -> int -> int32
val store_i32 : t -> int32 -> int -> int32 -> unit
val store_i64 : t -> int32 -> int -> int64 -> unit
val store_f64 : t -> int32 -> int -> float -> unit
val store_f32_bits : t -> int32 -> int -> int32 -> unit

(** {1 Int-domain accessors (tier 1)}

    Unboxed variants for the closure compiler: the base address is the
    {e unsigned} value of the i32 as a native int (mask a sign-extended
    canonical form with [land 0xFFFFFFFF]); i32 results come back
    sign-extended. Bounds checks and traps are identical to the [int32]
    accessors. *)

val load_i32_u : t -> int -> int -> int
val load_f64_u : t -> int -> int -> float
val store_i32_u : t -> int -> int -> int -> unit
val store_f64_u : t -> int -> int -> float -> unit

val load : t -> Ast.loadop -> int32 -> Value.t
(** Execute a load at the dynamic base address. *)

val store : t -> Ast.storeop -> int32 -> Value.t -> unit

(** {1 Snapshot primitives} — bulk capture/restore for [Snapshot]. *)

val snapshot_bytes : t -> bytes
(** A private copy of the entire contents (capture is O(size)). *)

val restore_bytes : t -> bytes -> unit
(** Restore a captured image: blits in place when the size is unchanged,
    re-points the array otherwise (undoing intervening grows). The
    restored state is byte-identical to capture time. *)

val digest : t -> Digest.t
(** MD5 of the entire contents. *)

val store_string : t -> at:int -> string -> unit
(** Raw byte write (data segments, tests). *)

val read_byte : t -> int -> int
val to_string : t -> at:int -> len:int -> string
