(** Linear memory: a growable little-endian byte array sized in 64 KiB
    pages. All accesses are bounds checked and raise [Value.Trap] on
    failure. *)

type t

val page_size : int
val absolute_max_pages : int
(** 65536 — the 32-bit address space limit. *)

val create : min_pages:int -> max_pages:int option -> t
val size_pages : t -> int
val size_bytes : t -> int

val grow : t -> int -> int
(** [grow t delta] grows by [delta] pages; returns the previous size in
    pages, or [-1] if the maximum would be exceeded (the Wasm failure
    convention). *)

val effective_address : t -> int32 -> int -> int -> int
(** [effective_address t base offset width]: unsigned base plus static
    offset, checked for a [width]-byte access. @raise Value.Trap when out
    of bounds. *)

val load : t -> Ast.loadop -> int32 -> Value.t
(** Execute a load at the dynamic base address. *)

val store : t -> Ast.storeop -> int32 -> Value.t -> unit

val store_string : t -> at:int -> string -> unit
(** Raw byte write (data segments, tests). *)

val read_byte : t -> int -> int
val to_string : t -> at:int -> len:int -> string
