(** WebAssembly types (MVP).

    The four primitive value types, function types, and the types of module
    entities (tables, memories, globals). Corresponds to the "Types" section
    of the Mini-Wasm grammar in the paper (Figure 3). *)

type num_type =
  | I32T
  | I64T
  | F32T
  | F64T

(** In the MVP, value types are exactly the numeric types. *)
type value_type = num_type

(** Integer width, used to index integer operators. *)
type isize = S32 | S64

(** Float width, used to index float operators. *)
type fsize = SF32 | SF64

let num_type_of_isize = function S32 -> I32T | S64 -> I64T
let num_type_of_fsize = function SF32 -> F32T | SF64 -> F64T

type func_type = {
  params : value_type list;
  results : value_type list;
}

type limits = {
  lim_min : int;
  lim_max : int option;
}

type mutability = Immutable | Mutable

type global_type = {
  content : value_type;
  mutability : mutability;
}

(** MVP tables always hold function references. *)
type table_type = { tbl_limits : limits }

type memory_type = { mem_limits : limits }

let func_type params results = { params; results }

let string_of_num_type = function
  | I32T -> "i32"
  | I64T -> "i64"
  | F32T -> "f32"
  | F64T -> "f64"

let string_of_value_type = string_of_num_type

let string_of_func_type { params; results } =
  let tys l = String.concat " " (List.map string_of_value_type l) in
  Printf.sprintf "[%s] -> [%s]" (tys params) (tys results)

let equal_func_type (a : func_type) (b : func_type) =
  a.params = b.params && a.results = b.results

(** Size in bytes of a value of the given type. *)
let byte_width = function
  | I32T | F32T -> 4
  | I64T | F64T -> 8

(** The Wasm page size: 64 KiB. *)
let page_size = 65536
