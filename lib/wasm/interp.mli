(** A complete interpreter for WebAssembly modules (MVP): instantiation
    with import resolution, a stack-machine execution engine over the flat
    instruction representation, host functions, and a fuel mechanism.

    The execution engine runs over a preallocated, growable, array-backed
    operand stack (one per instance, shared by all frames); per-function
    side tables (jump targets, [br_table] target arrays, straight-line run
    lengths for batched fuel accounting) are precomputed at instantiation.

    Traps raise [Value.Trap]. *)

exception Exhaustion of string
(** Raised when the configured fuel (instruction budget) runs out. *)

exception Link_error of string
(** Raised during instantiation: missing or mismatching imports, failing
    segment bounds, ... *)

type stack = {
  mutable data : Value.t array;
  mutable size : int;
}
(** The operand stack: top of stack at [data.(size - 1)]. *)

(** Pre-decoded instructions: what the dispatch loop executes. Decoding
    (once per function, at instantiation) resolves operator tags into
    dedicated opcodes, jump targets into absolute instruction indices,
    [br_table] targets into [int array]s, and memory accesses into
    width-specific opcodes; short straight-line idioms are fused into
    superinstructions covering 2–4 original instructions. Instruction
    indexing is preserved: a fused opcode sits at the index of its first
    original instruction and advances the program counter by the group
    length, and the interior slots hold [XFusedTail] (unreachable —
    fusion never spans a branch target). *)
type xinstr =
  | XUnreachable
  | XNop
  | XBlock of int * int  (** label target (just past the matching [End]), arity *)
  | XLoop  (** label target is the next instruction *)
  | XIf of int * int  (** no-else form: end target, arity *)
  | XIfElse of int * int * int  (** else target, end target, arity *)
  | XElse of int  (** end target (falling off the then-branch) *)
  | XEnd
  | XBr of int
  | XBrIf of int
  | XBrTable of int array  (** targets with the default appended *)
  | XReturn
  | XCall of int
  | XCallIndirect of int
  | XDrop
  | XSelect
  | XLocalGet of int
  | XLocalSet of int
  | XLocalTee of int
  | XGlobalGet of int
  | XGlobalSet of int
  | XConst of Value.t
  | XI32Load of int  (** width-specific memory access; the int is the static offset *)
  | XI64Load of int
  | XF32Load of int
  | XF64Load of int
  | XI32Store of int
  | XI64Store of int
  | XF32Store of int
  | XF64Store of int
  | XLoadGen of Ast.loadop  (** packed accesses *)
  | XStoreGen of Ast.storeop
  | XMemorySize
  | XMemoryGrow
  | XI32Eqz
  | XI32Bin of Ast.ibinop
  | XI32Rel of Ast.irelop
  | XI64Bin of Ast.ibinop
  | XI64Rel of Ast.irelop
  | XF64Bin of Ast.fbinop
  | XF64Rel of Ast.frelop
  | XF64Un of Ast.funop
  | XF64ConvertI32S
  | XI32TruncF64S
  | XTestGen of Ast.testop
  | XCompareGen of Ast.relop
  | XUnaryGen of Ast.unop
  | XBinaryGen of Ast.binop
  | XConvertGen of Ast.cvtop
  | XI32BinLL of Ast.ibinop * int * int
      (** [local.get a; local.get b; i32.binop] (3 instructions) *)
  | XI32BinLC of Ast.ibinop * int * int32
      (** [local.get a; i32.const c; i32.binop] (3) *)
  | XI32BinSL of Ast.ibinop * int  (** [local.get b; i32.binop] (2) *)
  | XI32BinSC of Ast.ibinop * int32  (** [i32.const c; i32.binop] (2) *)
  | XF64BinLL of Ast.fbinop * int * int
      (** [local.get a; local.get b; f64.binop] (3) *)
  | XF64BinSL of Ast.fbinop * int  (** [local.get b; f64.binop] (2) *)
  | XF64BinSC of Ast.fbinop * float  (** [f64.const c; f64.binop] (2) *)
  | XIncrL of int * int32
      (** [local.get x; i32.const c; i32.add; local.set x] (4) *)
  | XBrIfRelLL of Ast.irelop * int * int * int
      (** [local.get a; local.get b; i32.relop; br_if k] (4) *)
  | XBrIfRelLC of Ast.irelop * int * int32 * int
      (** [local.get a; i32.const c; i32.relop; br_if k] (4) *)
  | XBrIfRel of Ast.irelop * int  (** [i32.relop; br_if k] (2) *)
  | XBrIfEqz of int  (** [i32.eqz; br_if k] (2) *)
  | XI32LoadScaled of int32 * int
      (** [i32.const c; i32.mul; i32.add; i32.load off] (4): address
          [base + idx*c] *)
  | XF64LoadScaled of int32 * int  (** same for [f64.load] *)
  | XI32LoadL of int * int  (** [local.get a; i32.load off] (2) *)
  | XF64LoadL of int * int  (** [local.get a; f64.load off] (2) *)
  | XFusedTail  (** interior of a fused group; unreachable *)

(** The hooked variant of a function body that the engine-probe backend
    installs: an {e unfused} re-decode of the body (same indexing as the
    original instruction stream, no superinstructions — every original
    instruction is its own slot) plus per-slot event closures. Each
    closure receives the frame's locals; operands are peeked directly
    off the instance stack. [pp_pre] closures run before their slot's
    instruction; [pp_post] closures run after it completes without
    trapping and are only installed on fall-through instructions (a
    taken branch never reaches one). [pp_enter] runs on frame entry,
    [pp_exit] only on the implicit fall-off-the-end function exit
    (explicit [return]s and branches to the function label report theirs
    through [pp_pre]). *)
type probe_hooks = {
  pp_body : xinstr array;
  pp_pre : (Value.t array -> unit) option array;
  pp_post : (Value.t array -> unit) option array;
  pp_enter : (Value.t array -> unit) option;
  pp_exit : (Value.t array -> unit) option;
}

(** The snapshot-facing view of an attached probe controller (see
    {!set_probes}): [ps_capture ()] returns a thunk that re-arms the
    currently attached probe set when run, [ps_detach_all ()] detaches
    everything. *)
type probe_set = {
  ps_capture : unit -> unit -> unit;
  ps_detach_all : unit -> unit;
}

type func_inst =
  | Wasm_func of int * instance  (** index into [inst_code], owning instance *)
  | Host_func of host_func

and host_func = {
  h_type : Types.func_type;
  h_name : string;
  h_nparams : int;
      (** [List.length h_type.params], precomputed for the call path *)
  h_fn : Value.t array -> int -> Value.t list;
      (** [h_fn args off] reads its [h_nparams] arguments from
          [args.(off) .. args.(off + h_nparams - 1)]. On the wasm call
          path the array is the live operand-stack buffer (zero copies),
          so the function must read every argument before it
          (transitively) pushes onto any interpreter stack. Build
          host functions with {!host_func} (copying, re-entrant list
          ABI) or {!host_func_raw} (zero-copy array ABI). *)
}

and table_inst = {
  mutable t_elems : func_inst option array;
  t_max : int option;
}

and global_inst = {
  g_type : Types.global_type;
  mutable g_value : Value.t;
}

and extern =
  | Extern_func of func_inst
  | Extern_table of table_inst
  | Extern_memory of Memory.t
  | Extern_global of global_inst

(** Pre-computed jump targets of one function body. *)
and jump_info = {
  end_of : int array;  (** for Block/Loop/If at pc, index of the matching End *)
  else_of : int array;  (** for If at pc, index of the Else, or -1 *)
  max_depth : int;  (** deepest block nesting, bounds the label stack *)
}

(** One function's body plus every side table the dispatch loop needs:
    arities, local defaults, [br_table] targets as [int array], and the
    straight-line run lengths used to batch fuel accounting. *)
and code = {
  c_func : Ast.func;
  c_type : Types.func_type;
  c_body : Ast.instr array;
  c_xbody : xinstr array;
      (** pre-decoded form of [c_body], same indexing; what the dispatch
          loop executes *)
  c_jumps : jump_info;
  c_arity : int;  (** number of results *)
  c_nparams : int;
  c_local_defaults : Value.t array;  (** zero values of the declared locals *)
  c_frame_size : int;  (** params + declared locals *)
  c_br_tables : int array array;
      (** for BrTable at pc: targets with the default appended; [[||]]
          elsewhere *)
  c_run_len : int array;
      (** instructions from pc to the next control transfer, inclusive *)
  mutable c_tier : tier_state;
  mutable c_hot : int;  (** calls observed while still on tier 0 *)
  mutable c_probe : probe_hooks option;
      (** when set, the function runs on the probed dispatch loop over
          [pp_body] (engine-probe backend); tier state is ignored until
          the probe is removed *)
}

(** A compiled (tier-1) function body: called with the frame's locals,
    operands on the instance stack with the frame base at the current
    [size]; on normal return exactly [c_arity] results sit at that base
    (the [exec_body] contract). See {!Tier1}. *)
and compiled_body = instance -> Value.t array -> unit

and tier_state =
  | T_interp  (** not (yet) compiled; runs on the tier-0 dispatch loop *)
  | T_compiled of compiled_body
  | T_unsupported  (** the compiler declined this body; stays on tier 0 *)

(** Tier-up policy: once a function has been entered [tp_threshold]
    times, [tp_compile] is asked for a compiled body ([None] marks it
    unsupported and stops the counting). *)
and tier_policy = {
  tp_threshold : int;
  tp_compile : instance -> int -> compiled_body option;
}

and instance = {
  inst_module : Ast.module_;
  inst_types : Types.func_type array;
  mutable inst_funcs : func_inst array;
  mutable inst_code : code array;
  mutable inst_table : table_inst option;
  mutable inst_memory : Memory.t option;
  mutable inst_globals : global_inst array;
  mutable inst_exports : (string * extern) list;
  inst_stack : stack;  (** the operand stack shared by all frames *)
  mutable fuel : int;
  mutable steps : int;  (** total instructions executed *)
  mutable call_depth : int;
  mutable inst_prof : Obs.Profile.t option;
      (** attached profiler; [None] (the default) costs one match per
          call and per straight-line run *)
  mutable inst_tier : tier_policy option;
      (** tier-up policy; [None] (the default) keeps everything on the
          tier-0 dispatch loop *)
  mutable inst_gov : Governor.t option;
      (** attached resource governor; [None] (the default) costs one
          match per batch boundary / grow / host call *)
  mutable inst_deopt_on_fault : bool;
      (** when set, compiled bodies unwound by a governor violation or
          injected host fault deopt back to tier 0 permanently *)
  mutable inst_triggers : (int * (unit -> unit)) list;
      (** pending step triggers, sorted by step count; each fires once
          when [steps] first reaches its threshold, checked at batch
          charge boundaries on every tier *)
  mutable inst_probes : probe_set option;
      (** the attached probe controller's snapshot-facing view, if any *)
}

val max_call_depth : int
(** Calls deeper than this raise [Exhaustion "call stack exhausted"]
    instead of overflowing the OCaml stack. *)

val func_type_of : func_inst -> Types.func_type

val compute_jumps : Ast.instr array -> jump_info
(** Matching [End]/[Else] indices for every structured instruction; also
    used by the instrumenter's control stack. *)

type imports = (string * string * extern) list
(** (module name, item name, provided entity). *)

val default_fuel : int

val instantiate :
  ?fuel:int ->
  ?resolve_import:(int -> Ast.import -> extern option) ->
  imports:imports ->
  Ast.module_ ->
  instance
(** Resolve imports, allocate table/memory/globals, apply element and data
    segments, run the start function. The module must be valid.
    [resolve_import] is consulted first with the import's position and
    declaration — an O(1) dispatch-table path used by the Wasabi runtime
    for its hook imports; [None] falls back to the name-keyed [imports]
    list. Type checks apply to both paths.
    @raise Link_error on unresolvable or mismatching imports. *)

val fork : ?wrap_import:(int -> host_func -> host_func) -> instance -> instance
(** A cheap copy-on-write clone: pre-decoded code and per-function side
    tables are shared (immutable after {!instantiate}), memory / globals
    / table / stack / fuel accounting are copied, and function references
    owned by the source are remapped to the fork. The fork starts
    de-tiered and without profiler / governor / triggers / probes (tier-1
    closures close over their instance and must be recompiled per fork).
    [?wrap_import] substitutes imported host functions by overall
    function index — used to rebind hook imports to a per-fork runtime.
    The start function is not re-run. *)

val set_profiler : instance -> Obs.Profile.t option -> unit
(** Attach (or detach) a profiler; subsequent execution feeds it
    per-function call counts, self/inclusive times and per-site
    execution counts. *)

val set_tier : instance -> tier_policy option -> unit
(** Install (or remove) a tier-up policy. Cached compiled bodies and hot
    counts are discarded, so [set_tier inst None] is a full deopt back to
    the reference interpreter. Use {!Tier1.enable} for the standard
    closure-compiling policy. *)

val set_governor : instance -> Governor.t option -> unit
(** Attach (or detach) a resource governor. The caller is responsible
    for [Governor.arm] before each governed run. *)

val set_deopt_on_fault : instance -> bool -> unit
(** When enabled, a compiled (tier-1) body unwound by a governor
    violation or an injected host fault is deopted back to tier 0
    permanently and [wasabi_deopt_total] is incremented. *)

val is_fault_exn : exn -> bool
(** Environmental unwinds — governor budget violations and injected
    host faults — as opposed to properties of the guest code itself. *)

val unfused_xbody : code -> xinstr array
(** Re-decode the function body {e without} superinstruction fusion:
    every original instruction is its own slot, same indexing and
    [c_run_len] batching as the fused [c_xbody]. This is the execution
    stream probed bodies run on, so per-slot event closures line up
    one-to-one with original instructions. *)

val probe_function : instance -> int -> probe_hooks -> unit
(** Install a probed body on defined function [j] (an [inst_code]
    index). The function deopts: any compiled tier-1 closure is
    discarded and tier-up counting is suspended until
    {!unprobe_function}. Takes effect at the next entry into the
    function; frames already on the stack finish on the code they
    entered with. *)

val unprobe_function : instance -> int -> unit
(** Remove the probed body from defined function [j]; the hotness
    counter restarts from zero so the function re-tiers naturally under
    the installed tier policy. *)

val add_step_trigger : instance -> at:int -> (unit -> unit) -> unit
(** Register a thunk to run once when [steps] first reaches [at],
    checked at batch charge boundaries on every tier (so it fires
    within one straight-line run of the requested count). If [steps]
    is already past [at] the thunk fires immediately. *)

val clear_step_triggers : instance -> unit

val fire_triggers : instance -> unit
(** Fire every pending trigger whose threshold has been reached, in
    order. Exposed for the tier-1 charge prologue; tier 0 calls it
    internally. *)

val set_probes : instance -> probe_set option -> unit
(** Register (or clear) the snapshot-facing view of an attached probe
    controller; see {!Snapshot}. *)

val call_wasm : instance -> int -> stack -> unit
(** Call function [idx] of the instance with its arguments on top of the
    given stack; afterwards the results are there instead. Exposed for
    compiled (tier-1) bodies, which re-enter the engine through it. *)

val call_host : instance -> host_func -> stack -> unit
(** Invoke a host function with its arguments on top of the stack
    (zero-copy array ABI); results replace them. The instance is the
    caller, consulted for the governor's host-call budget. Exposed for
    compiled bodies. *)

val stack_reserve : stack -> int -> unit
(** Grow the stack's backing array until it holds at least the given
    number of slots (the size is unchanged). Compiled bodies reserve
    their full frame up front and then access slots unchecked. *)

val invoke : func_inst -> Value.t list -> Value.t list
val export : instance -> string -> extern
val export_func : instance -> string -> func_inst
val export_memory : instance -> string -> Memory.t
val export_global : instance -> string -> global_inst
val invoke_export : instance -> string -> Value.t list -> Value.t list

val host_func :
  name:string ->
  params:Types.value_type list ->
  results:Types.value_type list ->
  (Value.t list -> Value.t list) ->
  extern
(** Wrap an OCaml function as an importable host function. The argument
    slice is copied into a list before [fn] runs, so [fn] may re-enter
    the interpreter freely. *)

val host_func_raw :
  name:string ->
  params:Types.value_type list ->
  results:Types.value_type list ->
  (Value.t array -> int -> Value.t list) ->
  extern
(** Zero-copy array-ABI host function: [fn args off] reads its arguments
    directly out of the interpreter's operand-stack buffer. [fn] must
    read all arguments before (transitively) pushing onto any interpreter
    stack; see {!type:host_func}. *)
