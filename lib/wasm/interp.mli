(** A complete interpreter for WebAssembly modules (MVP): instantiation
    with import resolution, a stack-machine execution engine over the flat
    instruction representation, host functions, and a fuel mechanism.

    Traps raise [Value.Trap]. *)

exception Exhaustion of string
(** Raised when the configured fuel (instruction budget) runs out. *)

exception Link_error of string
(** Raised during instantiation: missing or mismatching imports, failing
    segment bounds, ... *)

type func_inst =
  | Wasm_func of int * instance  (** index into [inst_code], owning instance *)
  | Host_func of host_func

and host_func = {
  h_type : Types.func_type;
  h_name : string;
  h_fn : Value.t list -> Value.t list;
}

and table_inst = {
  mutable t_elems : func_inst option array;
  t_max : int option;
}

and global_inst = {
  g_type : Types.global_type;
  mutable g_value : Value.t;
}

and extern =
  | Extern_func of func_inst
  | Extern_table of table_inst
  | Extern_memory of Memory.t
  | Extern_global of global_inst

(** Pre-computed jump targets of one function body. *)
and jump_info = {
  end_of : int array;  (** for Block/Loop/If at pc, index of the matching End *)
  else_of : int array;  (** for If at pc, index of the Else, or -1 *)
}

and code = {
  c_func : Ast.func;
  c_type : Types.func_type;
  c_body : Ast.instr array;
  c_jumps : jump_info;
}

and instance = {
  inst_module : Ast.module_;
  inst_types : Types.func_type array;
  mutable inst_funcs : func_inst array;
  mutable inst_code : code array;
  mutable inst_table : table_inst option;
  mutable inst_memory : Memory.t option;
  mutable inst_globals : global_inst array;
  mutable inst_exports : (string * extern) list;
  mutable fuel : int;
  mutable steps : int;  (** total instructions executed *)
  mutable call_depth : int;
}

val max_call_depth : int
(** Calls deeper than this trap with "call stack exhausted". *)

val func_type_of : func_inst -> Types.func_type

val compute_jumps : Ast.instr array -> jump_info
(** Matching [End]/[Else] indices for every structured instruction; also
    used by the instrumenter's control stack. *)

type imports = (string * string * extern) list
(** (module name, item name, provided entity). *)

val default_fuel : int

val instantiate : ?fuel:int -> imports:imports -> Ast.module_ -> instance
(** Resolve imports, allocate table/memory/globals, apply element and data
    segments, run the start function. The module must be valid.
    @raise Link_error on unresolvable or mismatching imports. *)

val invoke : func_inst -> Value.t list -> Value.t list
val export : instance -> string -> extern
val export_func : instance -> string -> func_inst
val export_memory : instance -> string -> Memory.t
val export_global : instance -> string -> global_inst
val invoke_export : instance -> string -> Value.t list -> Value.t list

val host_func :
  name:string ->
  params:Types.value_type list ->
  results:Types.value_type list ->
  (Value.t list -> Value.t list) ->
  extern
(** Wrap an OCaml function as an importable host function. *)
