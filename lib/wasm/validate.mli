(** Validation (type checking) of WebAssembly modules, following the
    specification's validation algorithm. The incremental {!Stack_tracker}
    is exposed because Wasabi's instrumenter drives it instruction by
    instruction to learn the concrete types of polymorphic instructions
    (paper, Section 2.4.3). *)

exception Invalid of string

(** An abstract stack slot: a known value type, or unknown (below an
    unconditional branch the stack is polymorphic). *)
type vknown = Known of Types.value_type | Unknown

val string_of_vknown : vknown -> string

(** Pre-computed per-module lookup tables shared by the per-function
    trackers (avoids quadratic lookups on large modules). *)
module Module_ctx : sig
  type t = {
    types : Types.func_type array;
    func_types : Types.func_type array;  (** whole function index space *)
    global_types : Types.global_type array;
    has_memory : bool;
    has_table : bool;
  }

  val create : Ast.module_ -> t
end

(** Incremental abstract interpretation of one function body over types. *)
module Stack_tracker : sig
  type t

  val create : Ast.module_ -> Ast.func -> t
  val create_in : Module_ctx.t -> Ast.func -> t

  val step : t -> Ast.instr -> unit
  (** Type check one instruction and update the abstract stacks.
      @raise Invalid on ill-typed code. *)

  val finish : t -> unit
  (** Check the implicit end of the function body. *)

  val peek : t -> int -> vknown
  (** [peek t n] is the type of the [n]-th stack slot from the top without
      popping ([n = 0] is the top). *)

  val stack : t -> vknown list
  (** Snapshot of the abstract value stack, top first. *)

  val value_depth : t -> int
  (** Current value-stack height. *)

  val in_dead_code : t -> bool
  val depth : t -> int
  (** Control stack depth; the function frame counts as 1. *)

  val results : t -> Types.value_type list
  val local_type : t -> int -> Types.value_type
  val global_type : t -> int -> Types.global_type
  val func_type : t -> int -> Types.func_type
  val type_at : t -> int -> Types.func_type
  val cvt_types : Ast.cvtop -> Types.num_type * Types.num_type
  (** Input and output type of a conversion operator. *)
end

val validate_func : Ast.module_ -> Ast.func -> unit
val validate_module : Ast.module_ -> unit
(** Validate a whole module. @raise Invalid on the first error. *)

val is_valid : Ast.module_ -> bool
