(** Programmatic construction of Wasm modules, used by the MiniC compiler,
    workload generators and tests. Function imports must be added before
    defined functions so indices handed out stay valid. *)

type func_handle = {
  fh_index : int;  (** index in the function index space *)
  mutable fh_locals : Types.value_type list;
  mutable fh_body : Ast.instr list;
  fh_type : int;
}

type t

val create : unit -> t

val add_type : t -> Types.func_type -> int
(** Index of the type, adding it to the type section if new. *)

val import_func :
  t -> module_name:string -> name:string ->
  params:Types.value_type list -> results:Types.value_type list -> int

val import_global : t -> module_name:string -> name:string -> ty:Types.value_type -> mutable_:bool -> int

val declare_func :
  t -> params:Types.value_type list -> results:Types.value_type list -> func_handle
(** Declare now, give the body later via {!set_body} (mutual recursion). *)

val set_body : func_handle -> locals:Types.value_type list -> body:Ast.instr list -> unit

val add_func :
  t -> params:Types.value_type list -> results:Types.value_type list ->
  locals:Types.value_type list -> body:Ast.instr list -> int

val add_memory : t -> min_pages:int -> max_pages:int option -> unit
val add_table : t -> min_size:int -> max_size:int option -> unit
val add_global : t -> ty:Types.value_type -> mutable_:bool -> init:Value.t -> int
val export_func : t -> name:string -> int -> unit
val export_memory : t -> name:string -> unit
val export_table : t -> name:string -> unit
val export_global : t -> name:string -> int -> unit
val set_start : t -> int -> unit
val add_elem : t -> offset:int -> funcs:int list -> unit
val add_data : t -> offset:int -> bytes:string -> unit
val build : t -> Ast.module_

(** {1 Instruction shorthands} — a tiny DSL so builder clients read close
    to wat. *)

val i32 : int -> Ast.instr
val i32' : int32 -> Ast.instr
val i64 : int64 -> Ast.instr
val f32 : float -> Ast.instr
val f64 : float -> Ast.instr
val local_get : int -> Ast.instr
val local_set : int -> Ast.instr
val local_tee : int -> Ast.instr
val global_get : int -> Ast.instr
val global_set : int -> Ast.instr
val i32_load : ?offset:int -> unit -> Ast.instr
val i64_load : ?offset:int -> unit -> Ast.instr
val f32_load : ?offset:int -> unit -> Ast.instr
val f64_load : ?offset:int -> unit -> Ast.instr
val i32_load8_u : ?offset:int -> unit -> Ast.instr
val i32_store : ?offset:int -> unit -> Ast.instr
val i64_store : ?offset:int -> unit -> Ast.instr
val f32_store : ?offset:int -> unit -> Ast.instr
val f64_store : ?offset:int -> unit -> Ast.instr
val i32_store8 : ?offset:int -> unit -> Ast.instr
val i32_add : Ast.instr
val i32_sub : Ast.instr
val i32_mul : Ast.instr
val i32_div_s : Ast.instr
val i32_rem_s : Ast.instr
val i32_and : Ast.instr
val i32_or : Ast.instr
val i32_xor : Ast.instr
val i32_shl : Ast.instr
val i32_shr_s : Ast.instr
val i32_shr_u : Ast.instr
val i32_eq : Ast.instr
val i32_ne : Ast.instr
val i32_lt_s : Ast.instr
val i32_lt_u : Ast.instr
val i32_gt_s : Ast.instr
val i32_le_s : Ast.instr
val i32_ge_s : Ast.instr
val i32_eqz : Ast.instr
val i64_add : Ast.instr
val i64_sub : Ast.instr
val i64_mul : Ast.instr
val i64_xor : Ast.instr
val i64_shl : Ast.instr
val i64_shr_u : Ast.instr
val i64_eq : Ast.instr
val f64_add : Ast.instr
val f64_sub : Ast.instr
val f64_mul : Ast.instr
val f64_div : Ast.instr
val f64_sqrt : Ast.instr
val f64_abs : Ast.instr
val f64_neg : Ast.instr
val f64_lt : Ast.instr
val f64_gt : Ast.instr
val f64_le : Ast.instr
val f64_ge : Ast.instr
val f64_eq : Ast.instr

val block : ?result:Types.value_type -> Ast.instr list -> Ast.instr list
(** Wrap a body in [Block ... End]. *)

val loop : ?result:Types.value_type -> Ast.instr list -> Ast.instr list

val if_ :
  ?result:Types.value_type -> then_:Ast.instr list -> else_:Ast.instr list -> unit ->
  Ast.instr list
