(** Validation (type checking) of WebAssembly modules.

    The per-function algorithm follows the specification's validation
    appendix: an abstract value stack of known/unknown types plus a stack
    of control frames. The incremental {!Stack_tracker} is exposed
    separately because Wasabi's instrumenter drives it instruction by
    instruction to determine the concrete types of polymorphic
    instructions (paper, Section 2.4.3). *)

open Types
open Ast

(* Canonical declaration in {!Error}; rebinding keeps [Validate.Invalid]
   working as a name. *)
exception Invalid = Error.Invalid

let error fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

(** An abstract stack slot: a known value type, or unknown (below an
    unconditional branch, the stack is polymorphic). *)
type vknown = Known of value_type | Unknown

let string_of_vknown = function
  | Known t -> string_of_value_type t
  | Unknown -> "?"

type frame_kind = Kfunc | Kblock | Kloop | Kif | Kelse

let string_of_frame_kind = function
  | Kfunc -> "function"
  | Kblock -> "block"
  | Kloop -> "loop"
  | Kif -> "if"
  | Kelse -> "else"

type frame = {
  kind : frame_kind;
  bt : block_type;  (** result type of the block *)
  height : int;  (** value stack height at block entry *)
  mutable dead : bool;  (** code after an unconditional branch *)
}

let results_of_block_type = function
  | None -> []
  | Some t -> [ t ]

(** Pre-computed per-module lookup tables, shared across the per-function
    trackers; avoids quadratic list lookups on large modules. *)
module Module_ctx = struct
  type t = {
    types : func_type array;
    func_types : func_type array;  (** whole function index space *)
    global_types : global_type array;  (** whole global index space *)
    has_memory : bool;
    has_table : bool;
  }

  let create (m : module_) : t =
    let types = Array.of_list m.types in
    (* both index spaces come straight from the (unvalidated) binary:
       range-check before dereferencing so a bad type index is an
       [Invalid], not an [Invalid_argument] crash *)
    let type_at ti =
      if ti < 0 || ti >= Array.length types then error "type index %d out of range" ti;
      types.(ti)
    in
    let imported_func_types =
      List.filter_map
        (fun i -> match i.idesc with FuncImport ti -> Some (type_at ti) | _ -> None)
        m.imports
    in
    let defined_func_types = List.map (fun f -> type_at f.ftype) m.funcs in
    let imported_global_types =
      List.filter_map
        (fun i -> match i.idesc with GlobalImport gt -> Some gt | _ -> None)
        m.imports
    in
    let defined_global_types = List.map (fun g -> g.gtype) m.globals in
    {
      types;
      func_types = Array.of_list (imported_func_types @ defined_func_types);
      global_types = Array.of_list (imported_global_types @ defined_global_types);
      has_memory = num_imported_memories m + List.length m.memories > 0;
      has_table = num_imported_tables m + List.length m.tables > 0;
    }
end

module Stack_tracker = struct
  type t = {
    ctx : Module_ctx.t;
    locals : value_type array;
    results : value_type list;
    mutable vals : vknown list;  (** head is the stack top *)
    mutable nvals : int;
    mutable ctrls : frame list;  (** head is the innermost frame *)
  }

  (** Tracker for one function, given a pre-built module context. *)
  let create_in (ctx : Module_ctx.t) (f : func) =
    if f.ftype < 0 || f.ftype >= Array.length ctx.Module_ctx.types then
      error "function type index %d out of range" f.ftype;
    let ft = ctx.Module_ctx.types.(f.ftype) in
    let bt =
      match ft.results with
      | [] -> None
      | [ t ] -> Some t
      | _ -> error "multiple results not supported in the MVP"
    in
    {
      ctx;
      locals = Array.of_list (ft.params @ f.locals);
      results = ft.results;
      vals = [];
      nvals = 0;
      ctrls = [ { kind = Kfunc; bt; height = 0; dead = false } ];
    }

  let create (m : module_) (f : func) = create_in (Module_ctx.create m) f

  let cur_frame t =
    match t.ctrls with
    | [] -> error "control stack underflow"
    | f :: _ -> f

  let frame_at t n =
    match List.nth_opt t.ctrls n with
    | Some f -> f
    | None -> error "branch label %d out of range" n

  (** Depth of the control stack (the function frame counts as 1). *)
  let depth t = List.length t.ctrls

  (** True when the current position is unreachable (dead code). *)
  let in_dead_code t = (cur_frame t).dead

  let push t vt =
    t.vals <- Known vt :: t.vals;
    t.nvals <- t.nvals + 1

  let push_vk t vk =
    t.vals <- vk :: t.vals;
    t.nvals <- t.nvals + 1

  let pop_any t =
    let f = cur_frame t in
    if t.nvals = f.height then
      if f.dead then Unknown else error "value stack underflow"
    else
      match t.vals with
      | v :: rest ->
        t.vals <- rest;
        t.nvals <- t.nvals - 1;
        v
      | [] -> error "value stack underflow"

  let pop_expect t vt =
    match pop_any t with
    | Unknown -> ()
    | Known vt' ->
      if vt' <> vt then
        error "type mismatch: expected %s, found %s" (string_of_value_type vt)
          (string_of_value_type vt')

  (** Pop the types of a result list (given in stack order, last pushed on
      top). *)
  let pop_list t tys = List.iter (pop_expect t) (List.rev tys)

  (** Snapshot of the abstract value stack, top first. Static analyses
      (CFG edge metadata, the instrumentation-soundness lint) compare
      these shapes across program points. *)
  let stack t = t.vals

  (** Current value-stack height. *)
  let value_depth t = t.nvals

  (** Peek at the [n]-th slot from the top without popping ([n = 0] is the
      top). Returns [Unknown] when the slot is below the current frame in
      dead code. *)
  let peek t n =
    let f = cur_frame t in
    if t.nvals - n <= f.height then
      if f.dead then Unknown else error "value stack underflow"
    else
      match List.nth_opt t.vals n with
      | Some v -> v
      | None -> error "value stack underflow"

  let mark_dead t =
    let f = cur_frame t in
    (* truncate the stack to the frame height *)
    let rec drop k vs = if k = 0 then vs else drop (k - 1) (List.tl vs) in
    t.vals <- drop (t.nvals - f.height) t.vals;
    t.nvals <- f.height;
    f.dead <- true

  let push_frame t kind bt =
    t.ctrls <- { kind; bt; height = t.nvals; dead = false } :: t.ctrls

  let pop_frame t =
    let f = cur_frame t in
    pop_list t (results_of_block_type f.bt);
    if t.nvals <> f.height then
      error "%d superfluous value(s) at end of %s" (t.nvals - f.height)
        (string_of_frame_kind f.kind);
    t.ctrls <- List.tl t.ctrls;
    f

  (** Result types a branch to frame [f] must provide: a loop branches to
      the loop header (no block parameters in the MVP), anything else to
      the instruction after the block. *)
  let label_types (f : frame) =
    match f.kind with
    | Kloop -> []
    | Kfunc | Kblock | Kif | Kelse -> results_of_block_type f.bt

  let local_type t i =
    if i < 0 || i >= Array.length t.locals then error "local index %d out of range" i;
    t.locals.(i)

  let global_type t i =
    if i < 0 || i >= Array.length t.ctx.Module_ctx.global_types then
      error "global index %d out of range" i
    else t.ctx.Module_ctx.global_types.(i)

  let func_type t i =
    if i < 0 || i >= Array.length t.ctx.Module_ctx.func_types then
      error "function index %d out of range" i
    else t.ctx.Module_ctx.func_types.(i)

  (** Entry [i] of the module's type section. *)
  let type_at t i =
    if i < 0 || i >= Array.length t.ctx.Module_ctx.types then
      error "type index %d out of range" i
    else t.ctx.Module_ctx.types.(i)

  (** Result types of the function being checked. *)
  let results t = t.results

  let check_memory t = if not t.ctx.Module_ctx.has_memory then error "no memory defined"
  let check_table t = if not t.ctx.Module_ctx.has_table then error "no table defined"

  let check_align align width =
    (* [1 lsl align] is undefined for shifts >= word size: reject huge
       (attacker-controlled) exponents before shifting *)
    if align < 0 || align > 31 || 1 lsl align > width then error "invalid alignment %d" align

  let cvt_types = function
    | I32WrapI64 -> (I64T, I32T)
    | I32TruncF32S | I32TruncF32U -> (F32T, I32T)
    | I32TruncF64S | I32TruncF64U -> (F64T, I32T)
    | I64ExtendI32S | I64ExtendI32U -> (I32T, I64T)
    | I64TruncF32S | I64TruncF32U -> (F32T, I64T)
    | I64TruncF64S | I64TruncF64U -> (F64T, I64T)
    | F32ConvertI32S | F32ConvertI32U -> (I32T, F32T)
    | F32ConvertI64S | F32ConvertI64U -> (I64T, F32T)
    | F32DemoteF64 -> (F64T, F32T)
    | F64ConvertI32S | F64ConvertI32U -> (I32T, F64T)
    | F64ConvertI64S | F64ConvertI64U -> (I64T, F64T)
    | F64PromoteF32 -> (F32T, F64T)
    | I32ReinterpretF32 -> (F32T, I32T)
    | I64ReinterpretF64 -> (F64T, I64T)
    | F32ReinterpretI32 -> (I32T, F32T)
    | F64ReinterpretI64 -> (I64T, F64T)
    | I32TruncSatF32S | I32TruncSatF32U -> (F32T, I32T)
    | I32TruncSatF64S | I32TruncSatF64U -> (F64T, I32T)
    | I64TruncSatF32S | I64TruncSatF32U -> (F32T, I64T)
    | I64TruncSatF64S | I64TruncSatF64U -> (F64T, I64T)

  (** Type-check one instruction and update the abstract stacks. *)
  let step t (instr : instr) =
    match instr with
    | Nop -> ()
    | Unreachable -> mark_dead t
    | Block bt -> push_frame t Kblock bt
    | Loop bt -> push_frame t Kloop bt
    | If bt ->
      pop_expect t I32T;
      push_frame t Kif bt
    | Else ->
      let f = cur_frame t in
      if f.kind <> Kif then error "else without matching if";
      pop_list t (results_of_block_type f.bt);
      if t.nvals <> f.height then error "superfluous values before else";
      t.ctrls <- { f with kind = Kelse; dead = false } :: List.tl t.ctrls
    | End ->
      let f = pop_frame t in
      if f.kind = Kif && f.bt <> None then
        error "if without else cannot produce a result";
      if f.kind = Kfunc then error "unbalanced end"
      else List.iter (push t) (results_of_block_type f.bt)
    | Br n ->
      let f = frame_at t n in
      pop_list t (label_types f);
      mark_dead t
    | BrIf n ->
      pop_expect t I32T;
      let f = frame_at t n in
      let tys = label_types f in
      pop_list t tys;
      List.iter (push t) tys
    | BrTable (ls, d) ->
      pop_expect t I32T;
      let fd = frame_at t d in
      let tys = label_types fd in
      List.iter
        (fun l ->
           let f = frame_at t l in
           if label_types f <> tys then error "br_table label types differ")
        ls;
      pop_list t tys;
      mark_dead t
    | Return ->
      pop_list t t.results;
      mark_dead t
    | Call fidx ->
      let ft = func_type t fidx in
      pop_list t ft.params;
      List.iter (push t) ft.results
    | CallIndirect tidx ->
      check_table t;
      let ft = type_at t tidx in
      pop_expect t I32T;
      pop_list t ft.params;
      List.iter (push t) ft.results
    | Drop -> ignore (pop_any t)
    | Select ->
      pop_expect t I32T;
      let a = pop_any t in
      let b = pop_any t in
      (match a, b with
       | Known x, Known y when x <> y ->
         error "select operands disagree: %s vs %s" (string_of_value_type x)
           (string_of_value_type y)
       | Known x, _ | _, Known x -> push t x
       | Unknown, Unknown -> push_vk t Unknown)
    | LocalGet i -> push t (local_type t i)
    | LocalSet i -> pop_expect t (local_type t i)
    | LocalTee i ->
      let ty = local_type t i in
      pop_expect t ty;
      push t ty
    | GlobalGet i -> push t (global_type t i).content
    | GlobalSet i ->
      let gt = global_type t i in
      if gt.mutability = Immutable then error "global %d is immutable" i;
      pop_expect t gt.content
    | Load op ->
      check_memory t;
      let width = match op.lpack with
        | None -> byte_width op.lty
        | Some (Pack8, _) -> 1
        | Some (Pack16, _) -> 2
        | Some (Pack32, _) -> 4
      in
      check_align op.lalign width;
      pop_expect t I32T;
      push t op.lty
    | Store op ->
      check_memory t;
      let width = match op.spack with
        | None -> byte_width op.sty
        | Some Pack8 -> 1
        | Some Pack16 -> 2
        | Some Pack32 -> 4
      in
      check_align op.salign width;
      pop_expect t op.sty;
      pop_expect t I32T
    | MemorySize ->
      check_memory t;
      push t I32T
    | MemoryGrow ->
      check_memory t;
      pop_expect t I32T;
      push t I32T
    | Const v -> push t (Value.type_of v)
    | Test (IEqz sz) ->
      pop_expect t (num_type_of_isize sz);
      push t I32T
    | Compare (IRel (sz, _)) ->
      let ty = num_type_of_isize sz in
      pop_expect t ty;
      pop_expect t ty;
      push t I32T
    | Compare (FRel (sz, _)) ->
      let ty = num_type_of_fsize sz in
      pop_expect t ty;
      pop_expect t ty;
      push t I32T
    | Unary (IUn (sz, op)) ->
      if op = Ext32S && sz = S32 then error "i32.extend32_s does not exist";
      let ty = num_type_of_isize sz in
      pop_expect t ty;
      push t ty
    | Unary (FUn (sz, _)) ->
      let ty = num_type_of_fsize sz in
      pop_expect t ty;
      push t ty
    | Binary (IBin (sz, _)) ->
      let ty = num_type_of_isize sz in
      pop_expect t ty;
      pop_expect t ty;
      push t ty
    | Binary (FBin (sz, _)) ->
      let ty = num_type_of_fsize sz in
      pop_expect t ty;
      pop_expect t ty;
      push t ty
    | Convert op ->
      let from_ty, to_ty = cvt_types op in
      pop_expect t from_ty;
      push t to_ty

  (** Check the implicit end of the function body (our flat representation
      does not include the function's closing [End]). *)
  let finish t =
    (match t.ctrls with
     | [ f ] when f.kind = Kfunc ->
       pop_list t t.results;
       if t.nvals <> 0 then error "superfluous values at end of function"
     | _ -> error "unclosed block at end of function")
end

(** Check that an initializer is a constant expression of type [expected].
    MVP constant expressions: a single [Const] or a [GlobalGet] of an
    imported immutable global. *)
let check_const_expr (m : module_) (expected : value_type) = function
  | [ Const v ] ->
    if Value.type_of v <> expected then
      error "constant expression has type %s, expected %s"
        (string_of_value_type (Value.type_of v))
        (string_of_value_type expected)
  | [ GlobalGet i ] ->
    if i >= num_imported_globals m then
      error "init expression may only refer to imported globals";
    let gt = global_type_at m i in
    if gt.mutability <> Immutable then error "init global must be immutable";
    if gt.content <> expected then error "init global type mismatch"
  | _ -> error "unsupported constant expression"

let check_limits { lim_min; lim_max } ~range =
  if lim_min < 0 then error "negative limits minimum";
  (match lim_max with
   | Some max when max < lim_min -> error "limits maximum below minimum"
   | _ -> ());
  if lim_min > range then error "limits minimum exceeds valid range"

let validate_func_in ctx (f : func) =
  let tracker = Stack_tracker.create_in ctx f in
  List.iter (Stack_tracker.step tracker) f.body;
  Stack_tracker.finish tracker

let validate_func (m : module_) (f : func) = validate_func_in (Module_ctx.create m) f

(** Validate a whole module. Raises {!Invalid} on the first error. *)
let validate_module (m : module_) =
  Obs.Span.with_ "validate" @@ fun () ->
  List.iter
    (fun imp ->
       match imp.idesc with
       | FuncImport ti ->
         if ti < 0 || ti >= List.length m.types then
           error "import type index %d out of range" ti
       | TableImport tt -> check_limits tt.tbl_limits ~range:0xFFFF_FFFF
       | MemoryImport mt -> check_limits mt.mem_limits ~range:65536
       | GlobalImport _ -> ())
    m.imports;
  if num_imported_tables m + List.length m.tables > 1 then error "multiple tables";
  if num_imported_memories m + List.length m.memories > 1 then error "multiple memories";
  List.iter (fun t -> check_limits t.tbl_limits ~range:0xFFFF_FFFF) m.tables;
  List.iter (fun mt -> check_limits mt.mem_limits ~range:65536) m.memories;
  List.iter
    (fun g -> check_const_expr m g.gtype.content g.ginit)
    m.globals;
  let ctx = Module_ctx.create m in
  List.iter (validate_func_in ctx) m.funcs;
  let n_funcs = num_funcs m in
  let n_globals = num_imported_globals m + List.length m.globals in
  let n_tables = num_imported_tables m + List.length m.tables in
  let n_memories = num_imported_memories m + List.length m.memories in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
       if Hashtbl.mem seen e.name then error "duplicate export %S" e.name;
       Hashtbl.add seen e.name ();
       match e.edesc with
       | FuncExport i -> if i >= n_funcs then error "export: function %d out of range" i
       | TableExport i -> if i >= n_tables then error "export: table %d out of range" i
       | MemoryExport i -> if i >= n_memories then error "export: memory %d out of range" i
       | GlobalExport i -> if i >= n_globals then error "export: global %d out of range" i)
    m.exports;
  (match m.start with
   | None -> ()
   | Some f ->
     if f >= n_funcs then error "start function %d out of range" f;
     let ft = func_type_at m f in
     if ft.params <> [] || ft.results <> [] then
       error "start function must have type [] -> []");
  List.iter
    (fun e ->
       if e.etable >= n_tables then error "element segment: no table";
       check_const_expr m I32T e.eoffset;
       List.iter (fun f -> if f >= n_funcs then error "element: function %d out of range" f) e.einit)
    m.elems;
  List.iter
    (fun d ->
       if d.dmemory >= n_memories then error "data segment: no memory";
       check_const_expr m I32T d.doffset)
    m.datas

(** [true] iff the module validates. *)
let is_valid m =
  match validate_module m with
  | () -> true
  | exception Invalid _ -> false
