(** Rendering of interpreter profiles against a live instance: hot
    function tables, executed opcode mix (computed over the original,
    pre-fusion bodies), and folded stacks for flamegraph tools. *)

val func_name : Interp.instance -> int -> string
(** Display name of defined function [fid] (an [inst_code] index): its
    export name when exported, [func[i]] in the function index space
    otherwise. *)

val func_table : ?top:int -> Interp.instance -> Obs.Profile.t -> string
(** Table of the hottest functions by self time: calls, self/inclusive
    milliseconds, share of total self time. [top] defaults to 20. *)

val opcode_mix : Interp.instance -> Obs.Profile.t -> (string * int) list
(** Executed opcode mix (immediates stripped), count-descending. *)

val render_opcode_mix : ?top:int -> Interp.instance -> Obs.Profile.t -> string

val folded : Interp.instance -> Obs.Profile.t -> string list
(** Flamegraph folded-stack lines ([main;callee <ns>]). *)
