(** Runtime values and the numeric semantics of WebAssembly (MVP).

    [f32] values are represented by their IEEE-754 single-precision bit
    pattern; [f64] maps to OCaml [float]. All partial operations raise
    {!Trap} with the specification's error message. *)

exception Trap of string
(** A WebAssembly trap (division by zero, invalid conversion, out-of-bounds
    access, [unreachable], ...). *)

val trap : string -> 'a
(** [trap msg] raises {!Trap}. *)

type t =
  | I32 of int32
  | I64 of int64
  | F32 of int32  (** IEEE-754 single-precision bit pattern *)
  | F64 of float

val type_of : t -> Types.value_type
val default : Types.value_type -> t
(** The zero value of a type (used for uninitialised locals). *)

(** Conversion between the f32 bit representation and the OCaml float used
    for computation ([Int32.bits_of_float] rounds to single precision). *)
module F32_repr : sig
  val to_float : int32 -> float
  val of_float : float -> int32
end

(** {1 Constructors and accessors} *)

val i32 : int32 -> t
val i64 : int64 -> t
val f32 : float -> t
(** Rounds to single precision. *)

val f32_bits : int32 -> t
val f64 : float -> t
val i32_of_int : int -> t
val i32_of_bool : bool -> t

val as_i32 : t -> int32
(** @raise Trap if the value is not an i32 (and similarly below). *)

val as_i64 : t -> int64
val as_f32 : t -> float
val as_f32_bits : t -> int32
val as_f64 : t -> float

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
(** Structural equality; NaNs of the same width compare equal. *)

(** {1 Numeric primitives}

    Word-level operations used by {!Eval_numeric}; exposed for direct
    testing. *)

module I32_ops : sig
  val clz : int32 -> int
  val ctz : int32 -> int
  val popcnt : int32 -> int
  val div_s : int32 -> int32 -> int32
  val div_u : int32 -> int32 -> int32
  val rem_s : int32 -> int32 -> int32
  val rem_u : int32 -> int32 -> int32
  val shl : int32 -> int32 -> int32
  val shr_s : int32 -> int32 -> int32
  val shr_u : int32 -> int32 -> int32
  val rotl : int32 -> int32 -> int32
  val rotr : int32 -> int32 -> int32
  val lt_u : int32 -> int32 -> bool
  val gt_u : int32 -> int32 -> bool
  val le_u : int32 -> int32 -> bool
  val ge_u : int32 -> int32 -> bool
end

module I64_ops : sig
  val clz : int64 -> int
  val ctz : int64 -> int
  val popcnt : int64 -> int
  val div_s : int64 -> int64 -> int64
  val div_u : int64 -> int64 -> int64
  val rem_s : int64 -> int64 -> int64
  val rem_u : int64 -> int64 -> int64
  val shl : int64 -> int64 -> int64
  val shr_s : int64 -> int64 -> int64
  val shr_u : int64 -> int64 -> int64
  val rotl : int64 -> int64 -> int64
  val rotr : int64 -> int64 -> int64
  val lt_u : int64 -> int64 -> bool
  val gt_u : int64 -> int64 -> bool
  val le_u : int64 -> int64 -> bool
  val ge_u : int64 -> int64 -> bool
end

module F_ops : sig
  val is_nan : float -> bool
  val fmin : float -> float -> float
  (** NaN-propagating minimum with [-0 < +0]. *)

  val fmax : float -> float -> float
  val nearest : float -> float
  (** Round to nearest, ties to even. *)

  val trunc : float -> float
  val copysign : float -> float -> float
end

module Cvt : sig
  val i32_trunc_s : float -> int32
  (** @raise Trap on NaN or out-of-range input (and similarly below). *)

  val i32_trunc_u : float -> int32
  val i64_trunc_s : float -> int64
  val i64_trunc_u : float -> int64

  (** Saturating variants: NaN maps to 0, out-of-range clamps. *)

  val i32_trunc_sat_s : float -> int32
  val i32_trunc_sat_u : float -> int32
  val i64_trunc_sat_s : float -> int64
  val i64_trunc_sat_u : float -> int64

  val u32_to_float : int32 -> float
  val u64_to_float : int64 -> float
end
