(** Linear memory: a growable byte array addressed in little-endian order,
    sized in 64 KiB pages. All accesses are bounds-checked and trap with
    the spec's "out of bounds memory access" message. *)

type t = {
  mutable data : bytes;
  max_pages : int option;
}

let page_size = Types.page_size

(** Hard limit of the 32-bit address space: 65536 pages. *)
let absolute_max_pages = 65536

let create ~min_pages ~max_pages =
  if min_pages < 0 || min_pages > absolute_max_pages then
    invalid_arg "Memory.create: invalid size";
  { data = Bytes.make (min_pages * page_size) '\x00'; max_pages }

let size_pages t = Bytes.length t.data / page_size
let size_bytes t = Bytes.length t.data

(** Grow by [delta] pages. Returns the previous size in pages, or [-1] if
    growing would exceed the maximum (the Wasm failure convention). *)
let grow t delta =
  if delta < 0 then -1
  else
    let old_pages = size_pages t in
    let new_pages = old_pages + delta in
    let limit = match t.max_pages with Some m -> min m absolute_max_pages | None -> absolute_max_pages in
    if new_pages > limit then -1
    else begin
      let data = Bytes.make (new_pages * page_size) '\x00' in
      Bytes.blit t.data 0 data 0 (Bytes.length t.data);
      t.data <- data;
      old_pages
    end

let out_of_bounds () = raise (Value.Trap "out of bounds memory access")

(** Effective address of an access: unsigned i32 base plus static offset,
    checked against the memory size for [width] bytes. *)
let effective_address t (base : int32) (offset : int) (width : int) : int =
  let ea = Int64.add (Int64.logand (Int64.of_int32 base) 0xFFFFFFFFL) (Int64.of_int offset) in
  if Int64.compare ea 0L < 0
  || Int64.compare (Int64.add ea (Int64.of_int width)) (Int64.of_int (size_bytes t)) > 0
  then out_of_bounds ()
  else Int64.to_int ea

let load_bytes t addr offset width : int64 =
  let ea = effective_address t addr offset width in
  let v = ref 0L in
  for i = width - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get t.data (ea + i))))
  done;
  !v

let store_bytes t addr offset width (v : int64) =
  let ea = effective_address t addr offset width in
  for i = 0 to width - 1 do
    Bytes.set t.data (ea + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let sign_extend v bits =
  let shift = 64 - bits in
  Int64.shift_right (Int64.shift_left v shift) shift

(** Execute a load instruction: [addr] is the dynamic base address. *)
let load t (op : Ast.loadop) (addr : int32) : Value.t =
  let open Ast in
  let raw width = load_bytes t addr op.loffset width in
  match op.lty, op.lpack with
  | Types.I32T, None -> Value.I32 (Int64.to_int32 (raw 4))
  | Types.I64T, None -> Value.I64 (raw 8)
  | Types.F32T, None -> Value.F32 (Int64.to_int32 (raw 4))
  | Types.F64T, None -> Value.F64 (Int64.float_of_bits (raw 8))
  | Types.I32T, Some (Pack8, SX) -> Value.I32 (Int64.to_int32 (sign_extend (raw 1) 8))
  | Types.I32T, Some (Pack8, ZX) -> Value.I32 (Int64.to_int32 (raw 1))
  | Types.I32T, Some (Pack16, SX) -> Value.I32 (Int64.to_int32 (sign_extend (raw 2) 16))
  | Types.I32T, Some (Pack16, ZX) -> Value.I32 (Int64.to_int32 (raw 2))
  | Types.I64T, Some (Pack8, SX) -> Value.I64 (sign_extend (raw 1) 8)
  | Types.I64T, Some (Pack8, ZX) -> Value.I64 (raw 1)
  | Types.I64T, Some (Pack16, SX) -> Value.I64 (sign_extend (raw 2) 16)
  | Types.I64T, Some (Pack16, ZX) -> Value.I64 (raw 2)
  | Types.I64T, Some (Pack32, SX) -> Value.I64 (sign_extend (raw 4) 32)
  | Types.I64T, Some (Pack32, ZX) -> Value.I64 (raw 4)
  | _ -> invalid_arg "Memory.load: invalid load operator"

(** Execute a store instruction. *)
let store t (op : Ast.storeop) (addr : int32) (v : Value.t) =
  let open Ast in
  let bits64 =
    match v with
    | Value.I32 x -> Int64.logand (Int64.of_int32 x) 0xFFFFFFFFL
    | Value.I64 x -> x
    | Value.F32 b -> Int64.logand (Int64.of_int32 b) 0xFFFFFFFFL
    | Value.F64 f -> Int64.bits_of_float f
  in
  let width =
    match op.spack with
    | None -> Types.byte_width op.sty
    | Some Pack8 -> 1
    | Some Pack16 -> 2
    | Some Pack32 -> 4
  in
  store_bytes t addr op.soffset width bits64

(** Raw byte access, for data segment initialisation and tests. *)
let store_string t ~(at : int) (s : string) =
  if at < 0 || at + String.length s > size_bytes t then out_of_bounds ();
  Bytes.blit_string s 0 t.data at (String.length s)

let read_byte t at =
  if at < 0 || at >= size_bytes t then out_of_bounds ();
  Char.code (Bytes.get t.data at)

let to_string t ~at ~len =
  if at < 0 || at + len > size_bytes t then out_of_bounds ();
  Bytes.sub_string t.data at len
