(** Linear memory: a growable byte array addressed in little-endian order,
    sized in 64 KiB pages. All accesses are bounds-checked and trap with
    the spec's "out of bounds memory access" message.

    The access paths are allocation-free up to the result value: effective
    addresses are computed in native [int]s (a 63-bit int exactly holds
    unsigned-i32 base + offset + width) and multi-byte accesses go through
    the [Bytes] little-endian intrinsics rather than per-byte loops. *)

type t = {
  mutable data : bytes;
  max_pages : int option;
}

let page_size = Types.page_size

(** Hard limit of the 32-bit address space: 65536 pages. *)
let absolute_max_pages = 65536

let create ~min_pages ~max_pages =
  if min_pages < 0 || min_pages > absolute_max_pages then
    invalid_arg "Memory.create: invalid size";
  { data = Bytes.make (min_pages * page_size) '\x00'; max_pages }

let size_pages t = Bytes.length t.data / page_size
let size_bytes t = Bytes.length t.data

(** An independent memory with the same contents and limits — the basis
    of instance forking: one [Bytes.copy], no shared mutable state. *)
let clone t = { data = Bytes.copy t.data; max_pages = t.max_pages }

(** Grow by [delta] pages. Returns the previous size in pages, or [-1] if
    growing would exceed the maximum (the Wasm failure convention). *)
let grow t delta =
  (* the early bound on [delta] also keeps [old_pages + delta] from
     overflowing the OCaml int *)
  if delta < 0 || delta > absolute_max_pages then -1
  else
    let old_pages = size_pages t in
    let new_pages = old_pages + delta in
    let limit = match t.max_pages with Some m -> min m absolute_max_pages | None -> absolute_max_pages in
    if new_pages > limit then -1
    else begin
      let data = Bytes.make (new_pages * page_size) '\x00' in
      Bytes.blit t.data 0 data 0 (Bytes.length t.data);
      t.data <- data;
      old_pages
    end

let out_of_bounds () = raise (Value.Trap "out of bounds memory access")

(** Effective address of an access: unsigned i32 base plus static offset,
    checked against the memory size for [width] bytes. Base and offset are
    both below 2^32, so the sum cannot overflow a native int. *)
let effective_address t (base : int32) (offset : int) (width : int) : int =
  let ea = (Int32.to_int base land 0xFFFFFFFF) + offset in
  if ea + width > Bytes.length t.data then out_of_bounds ();
  ea

(** {1 Width-specific accessors} — the interpreter's fast path for
    unpacked loads and stores. *)

let load_i32 t (base : int32) (offset : int) : int32 =
  Bytes.get_int32_le t.data (effective_address t base offset 4)

let load_i64 t (base : int32) (offset : int) : int64 =
  Bytes.get_int64_le t.data (effective_address t base offset 8)

let load_f64 t (base : int32) (offset : int) : float =
  Int64.float_of_bits (load_i64 t base offset)

(** f32 loads return the raw bit pattern (the [Value.F32] representation). *)
let load_f32_bits = load_i32

let store_i32 t (base : int32) (offset : int) (v : int32) =
  Bytes.set_int32_le t.data (effective_address t base offset 4) v

let store_i64 t (base : int32) (offset : int) (v : int64) =
  Bytes.set_int64_le t.data (effective_address t base offset 8) v

let store_f64 t (base : int32) (offset : int) (v : float) =
  store_i64 t base offset (Int64.bits_of_float v)

let store_f32_bits = store_i32

(** {1 Int-domain accessors (tier 1)}

    The closure compiler keeps i32 values as sign-extended native ints
    and f64 values unboxed; these variants take the {e unsigned} base
    address as an int (callers mask their canonical signed form with
    [land 0xFFFFFFFF]) and return i32 results sign-extended, so the hot
    load/store paths compile without intermediate [int32] boxes. Bounds
    checks, trap message and byte order are identical to the [int32]
    accessors above. *)

let effective_address_u t (ubase : int) (offset : int) (width : int) : int =
  let ea = ubase + offset in
  if ea + width > Bytes.length t.data then out_of_bounds ();
  ea

let load_i32_u t (ubase : int) (offset : int) : int =
  Int32.to_int (Bytes.get_int32_le t.data (effective_address_u t ubase offset 4))

let load_f64_u t (ubase : int) (offset : int) : float =
  Int64.float_of_bits (Bytes.get_int64_le t.data (effective_address_u t ubase offset 8))

let store_i32_u t (ubase : int) (offset : int) (v : int) =
  Bytes.set_int32_le t.data (effective_address_u t ubase offset 4) (Int32.of_int v)

let store_f64_u t (ubase : int) (offset : int) (v : float) =
  Bytes.set_int64_le t.data (effective_address_u t ubase offset 8) (Int64.bits_of_float v)

(** {1 Generic operator execution} — packed and unpacked. *)

(** Execute a load instruction: [addr] is the dynamic base address. *)
let load t (op : Ast.loadop) (addr : int32) : Value.t =
  let open Ast in
  match op.lty, op.lpack with
  | Types.I32T, None -> Value.I32 (load_i32 t addr op.loffset)
  | Types.I64T, None -> Value.I64 (load_i64 t addr op.loffset)
  | Types.F32T, None -> Value.F32 (load_f32_bits t addr op.loffset)
  | Types.F64T, None -> Value.F64 (load_f64 t addr op.loffset)
  | Types.I32T, Some (Pack8, SX) ->
    Value.I32 (Int32.of_int (Bytes.get_int8 t.data (effective_address t addr op.loffset 1)))
  | Types.I32T, Some (Pack8, ZX) ->
    Value.I32 (Int32.of_int (Bytes.get_uint8 t.data (effective_address t addr op.loffset 1)))
  | Types.I32T, Some (Pack16, SX) ->
    Value.I32 (Int32.of_int (Bytes.get_int16_le t.data (effective_address t addr op.loffset 2)))
  | Types.I32T, Some (Pack16, ZX) ->
    Value.I32 (Int32.of_int (Bytes.get_uint16_le t.data (effective_address t addr op.loffset 2)))
  | Types.I64T, Some (Pack8, SX) ->
    Value.I64 (Int64.of_int (Bytes.get_int8 t.data (effective_address t addr op.loffset 1)))
  | Types.I64T, Some (Pack8, ZX) ->
    Value.I64 (Int64.of_int (Bytes.get_uint8 t.data (effective_address t addr op.loffset 1)))
  | Types.I64T, Some (Pack16, SX) ->
    Value.I64 (Int64.of_int (Bytes.get_int16_le t.data (effective_address t addr op.loffset 2)))
  | Types.I64T, Some (Pack16, ZX) ->
    Value.I64 (Int64.of_int (Bytes.get_uint16_le t.data (effective_address t addr op.loffset 2)))
  | Types.I64T, Some (Pack32, SX) -> Value.I64 (Int64.of_int32 (load_i32 t addr op.loffset))
  | Types.I64T, Some (Pack32, ZX) ->
    Value.I64 (Int64.logand (Int64.of_int32 (load_i32 t addr op.loffset)) 0xFFFFFFFFL)
  | _ -> invalid_arg "Memory.load: invalid load operator"

(** Execute a store instruction. *)
let store t (op : Ast.storeop) (addr : int32) (v : Value.t) =
  let open Ast in
  match op.sty, op.spack, v with
  | Types.I32T, None, Value.I32 x -> store_i32 t addr op.soffset x
  | Types.I64T, None, Value.I64 x -> store_i64 t addr op.soffset x
  | Types.F32T, None, Value.F32 b -> store_f32_bits t addr op.soffset b
  | Types.F64T, None, Value.F64 f -> store_f64 t addr op.soffset f
  | Types.I32T, Some Pack8, Value.I32 x ->
    Bytes.set_int8 t.data (effective_address t addr op.soffset 1) (Int32.to_int x land 0xFF)
  | Types.I32T, Some Pack16, Value.I32 x ->
    Bytes.set_int16_le t.data (effective_address t addr op.soffset 2) (Int32.to_int x land 0xFFFF)
  | Types.I64T, Some Pack8, Value.I64 x ->
    Bytes.set_int8 t.data (effective_address t addr op.soffset 1) (Int64.to_int x land 0xFF)
  | Types.I64T, Some Pack16, Value.I64 x ->
    Bytes.set_int16_le t.data (effective_address t addr op.soffset 2) (Int64.to_int x land 0xFFFF)
  | Types.I64T, Some Pack32, Value.I64 x -> store_i32 t addr op.soffset (Int64.to_int32 x)
  | _ -> raise (Value.Trap "type mismatch in store operation")

(** {1 Snapshot primitives} — bulk capture/restore of the whole array,
    for [Snapshot]. *)

let snapshot_bytes t = Bytes.copy t.data

(** Restore a previously captured image. When the current size matches
    the image (no intervening grow) the image is blitted into the live
    array; otherwise the memory is re-pointed at a fresh copy, which also
    shrinks a grown memory back to its snapshot size. Either way the
    restored state is byte-identical to capture time. *)
let restore_bytes t (img : bytes) =
  if Bytes.length t.data = Bytes.length img then Bytes.blit img 0 t.data 0 (Bytes.length img)
  else t.data <- Bytes.copy img

let digest t = Digest.bytes t.data

(** Raw byte access, for data segment initialisation and tests. *)
let store_string t ~(at : int) (s : string) =
  if at < 0 || at + String.length s > size_bytes t then out_of_bounds ();
  Bytes.blit_string s 0 t.data at (String.length s)

let read_byte t at =
  if at < 0 || at >= size_bytes t then out_of_bounds ();
  Char.code (Bytes.get t.data at)

let to_string t ~at ~len =
  if at < 0 || at + len > size_bytes t then out_of_bounds ();
  Bytes.sub_string t.data at len
