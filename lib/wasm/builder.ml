(** Programmatic construction of Wasm modules.

    Used by the MiniC compiler, the workload generators and the test
    suites. Function imports must be added before defined functions, so
    that function indices handed out by the builder stay valid. *)

open Types
open Ast

type func_handle = {
  fh_index : int;  (** index in the function index space *)
  mutable fh_locals : value_type list;
  mutable fh_body : instr list;
  fh_type : int;
}

type t = {
  mutable b_types : func_type list;  (** reversed *)
  mutable b_n_types : int;
  mutable b_imports : import list;  (** reversed *)
  mutable b_n_func_imports : int;
  mutable b_funcs : func_handle list;  (** reversed *)
  mutable b_n_funcs : int;
  mutable b_table : table_type option;
  mutable b_memory : memory_type option;
  mutable b_globals : global list;  (** reversed *)
  mutable b_n_globals : int;
  mutable b_n_global_imports : int;
  mutable b_exports : export list;  (** reversed *)
  mutable b_start : int option;
  mutable b_elems : elem_segment list;  (** reversed *)
  mutable b_datas : data_segment list;  (** reversed *)
}

let create () = {
  b_types = [];
  b_n_types = 0;
  b_imports = [];
  b_n_func_imports = 0;
  b_funcs = [];
  b_n_funcs = 0;
  b_table = None;
  b_memory = None;
  b_globals = [];
  b_n_globals = 0;
  b_n_global_imports = 0;
  b_exports = [];
  b_start = None;
  b_elems = [];
  b_datas = [];
}

(** Index of [ft] in the type section, adding it if not present. *)
let add_type b (ft : func_type) : int =
  let rec find i = function
    | [] -> None
    | t :: rest -> if equal_func_type t ft then Some (b.b_n_types - 1 - i) else find (i + 1) rest
  in
  match find 0 b.b_types with
  | Some idx -> idx
  | None ->
    b.b_types <- ft :: b.b_types;
    b.b_n_types <- b.b_n_types + 1;
    b.b_n_types - 1

let import_func b ~module_name ~name ~params ~results : int =
  if b.b_n_funcs > 0 then
    invalid_arg "Builder.import_func: imports must precede defined functions";
  let ti = add_type b { params; results } in
  b.b_imports <- { module_name; item_name = name; idesc = FuncImport ti } :: b.b_imports;
  b.b_n_func_imports <- b.b_n_func_imports + 1;
  b.b_n_func_imports - 1

let import_global b ~module_name ~name ~ty ~mutable_ : int =
  if b.b_n_globals > 0 then
    invalid_arg "Builder.import_global: imports must precede defined globals";
  let gt = { content = ty; mutability = (if mutable_ then Mutable else Immutable) } in
  b.b_imports <- { module_name; item_name = name; idesc = GlobalImport gt } :: b.b_imports;
  b.b_n_global_imports <- b.b_n_global_imports + 1;
  b.b_n_global_imports - 1

(** Declare a function; its body may be set later via the handle (for
    mutual recursion and forward references). Returns the handle; its
    [fh_index] is the function's index in the module. *)
let declare_func b ~params ~results : func_handle =
  let ti = add_type b { params; results } in
  let fh = {
    fh_index = b.b_n_func_imports + b.b_n_funcs;
    fh_locals = [];
    fh_body = [];
    fh_type = ti;
  } in
  b.b_funcs <- fh :: b.b_funcs;
  b.b_n_funcs <- b.b_n_funcs + 1;
  fh

let set_body (fh : func_handle) ~locals ~body =
  fh.fh_locals <- locals;
  fh.fh_body <- body

(** Declare a function and give its body at once. *)
let add_func b ~params ~results ~locals ~body : int =
  let fh = declare_func b ~params ~results in
  set_body fh ~locals ~body;
  fh.fh_index

let add_memory b ~min_pages ~max_pages =
  if b.b_memory <> None then invalid_arg "Builder.add_memory: memory already defined";
  b.b_memory <- Some { mem_limits = { lim_min = min_pages; lim_max = max_pages } }

let add_table b ~min_size ~max_size =
  if b.b_table <> None then invalid_arg "Builder.add_table: table already defined";
  b.b_table <- Some { tbl_limits = { lim_min = min_size; lim_max = max_size } }

let add_global b ~ty ~mutable_ ~init : int =
  let gtype = { content = ty; mutability = (if mutable_ then Mutable else Immutable) } in
  b.b_globals <- { gtype; ginit = [ Const init ] } :: b.b_globals;
  b.b_n_globals <- b.b_n_globals + 1;
  b.b_n_global_imports + b.b_n_globals - 1

let export_func b ~name fidx = b.b_exports <- { name; edesc = FuncExport fidx } :: b.b_exports
let export_memory b ~name = b.b_exports <- { name; edesc = MemoryExport 0 } :: b.b_exports
let export_table b ~name = b.b_exports <- { name; edesc = TableExport 0 } :: b.b_exports
let export_global b ~name gidx = b.b_exports <- { name; edesc = GlobalExport gidx } :: b.b_exports
let set_start b fidx = b.b_start <- Some fidx

let add_elem b ~offset ~funcs =
  b.b_elems <- { etable = 0; eoffset = [ Const (Value.i32_of_int offset) ]; einit = funcs } :: b.b_elems

let add_data b ~offset ~bytes =
  b.b_datas <- { dmemory = 0; doffset = [ Const (Value.i32_of_int offset) ]; dinit = bytes } :: b.b_datas

let build b : module_ =
  {
    types = List.rev b.b_types;
    imports = List.rev b.b_imports;
    funcs =
      List.rev_map
        (fun fh -> { ftype = fh.fh_type; locals = fh.fh_locals; body = fh.fh_body })
        b.b_funcs;
    tables = (match b.b_table with None -> [] | Some t -> [ t ]);
    memories = (match b.b_memory with None -> [] | Some m -> [ m ]);
    globals = List.rev b.b_globals;
    exports = List.rev b.b_exports;
    start = b.b_start;
    elems = List.rev b.b_elems;
    datas = List.rev b.b_datas;
  }

(** {1 Instruction shorthands}

    Small DSL so builder clients read closer to wat. *)

let i32 k = Const (Value.i32_of_int k)
let i32' k = Const (Value.I32 k)
let i64 k = Const (Value.I64 k)
let f32 f = Const (Value.f32 f)
let f64 f = Const (Value.F64 f)

let local_get x = LocalGet x
let local_set x = LocalSet x
let local_tee x = LocalTee x
let global_get x = GlobalGet x
let global_set x = GlobalSet x

let i32_load ?(offset = 0) () = Load { lty = I32T; lalign = 2; loffset = offset; lpack = None }
let i64_load ?(offset = 0) () = Load { lty = I64T; lalign = 3; loffset = offset; lpack = None }
let f64_load ?(offset = 0) () = Load { lty = F64T; lalign = 3; loffset = offset; lpack = None }
let f32_load ?(offset = 0) () = Load { lty = F32T; lalign = 2; loffset = offset; lpack = None }
let i32_load8_u ?(offset = 0) () = Load { lty = I32T; lalign = 0; loffset = offset; lpack = Some (Pack8, ZX) }
let i32_store ?(offset = 0) () = Store { sty = I32T; salign = 2; soffset = offset; spack = None }
let i64_store ?(offset = 0) () = Store { sty = I64T; salign = 3; soffset = offset; spack = None }
let f64_store ?(offset = 0) () = Store { sty = F64T; salign = 3; soffset = offset; spack = None }
let f32_store ?(offset = 0) () = Store { sty = F32T; salign = 2; soffset = offset; spack = None }
let i32_store8 ?(offset = 0) () = Store { sty = I32T; salign = 0; soffset = offset; spack = Some Pack8 }

let i32_add = Binary (IBin (S32, Add))
let i32_sub = Binary (IBin (S32, Sub))
let i32_mul = Binary (IBin (S32, Mul))
let i32_div_s = Binary (IBin (S32, DivS))
let i32_rem_s = Binary (IBin (S32, RemS))
let i32_and = Binary (IBin (S32, And))
let i32_or = Binary (IBin (S32, Or))
let i32_xor = Binary (IBin (S32, Xor))
let i32_shl = Binary (IBin (S32, Shl))
let i32_shr_s = Binary (IBin (S32, ShrS))
let i32_shr_u = Binary (IBin (S32, ShrU))
let i32_eq = Compare (IRel (S32, Eq))
let i32_ne = Compare (IRel (S32, Ne))
let i32_lt_s = Compare (IRel (S32, LtS))
let i32_lt_u = Compare (IRel (S32, LtU))
let i32_gt_s = Compare (IRel (S32, GtS))
let i32_le_s = Compare (IRel (S32, LeS))
let i32_ge_s = Compare (IRel (S32, GeS))
let i32_eqz = Test (IEqz S32)
let i64_add = Binary (IBin (S64, Add))
let i64_sub = Binary (IBin (S64, Sub))
let i64_mul = Binary (IBin (S64, Mul))
let i64_xor = Binary (IBin (S64, Xor))
let i64_shl = Binary (IBin (S64, Shl))
let i64_shr_u = Binary (IBin (S64, ShrU))
let i64_eq = Compare (IRel (S64, Eq))
let f64_add = Binary (FBin (SF64, FAdd))
let f64_sub = Binary (FBin (SF64, FSub))
let f64_mul = Binary (FBin (SF64, FMul))
let f64_div = Binary (FBin (SF64, FDiv))
let f64_sqrt = Unary (FUn (SF64, Sqrt))
let f64_abs = Unary (FUn (SF64, Abs))
let f64_neg = Unary (FUn (SF64, Neg))
let f64_lt = Compare (FRel (SF64, FLt))
let f64_gt = Compare (FRel (SF64, FGt))
let f64_le = Compare (FRel (SF64, FLe))
let f64_ge = Compare (FRel (SF64, FGe))
let f64_eq = Compare (FRel (SF64, FEq))

let block ?result body = (Block result :: body) @ [ End ]
let loop ?result body = (Loop result :: body) @ [ End ]
let if_ ?result ~then_ ~else_ () =
  match else_ with
  | [] -> (If result :: then_) @ [ End ]
  | _ -> (If result :: then_) @ (Else :: else_) @ [ End ]
