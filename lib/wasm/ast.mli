(** Abstract syntax of WebAssembly modules (MVP).

    Function bodies are {e flat} instruction sequences in which [Block],
    [Loop], [If], [Else] and [End] appear as ordinary instructions, as in
    the binary format: the paper's code locations are (function index,
    instruction index) pairs counting instructions linearly, including
    block delimiters. *)

open Types

type iunop = Clz | Ctz | Popcnt | Ext8S | Ext16S | Ext32S  (* sign-extension operators; Ext32S is i64-only *)
type funop = Abs | Neg | Sqrt | Ceil | Floor | Trunc | Nearest

type ibinop =
  | Add | Sub | Mul | DivS | DivU | RemS | RemU
  | And | Or | Xor | Shl | ShrS | ShrU | Rotl | Rotr

type fbinop = FAdd | FSub | FMul | FDiv | Min | Max | CopySign
type irelop = Eq | Ne | LtS | LtU | GtS | GtU | LeS | LeU | GeS | GeU
type frelop = FEq | FNe | FLt | FGt | FLe | FGe

type unop = IUn of isize * iunop | FUn of fsize * funop
type binop = IBin of isize * ibinop | FBin of fsize * fbinop
type testop = IEqz of isize
type relop = IRel of isize * irelop | FRel of fsize * frelop

type cvtop =
  | I32WrapI64
  | I32TruncF32S | I32TruncF32U | I32TruncF64S | I32TruncF64U
  | I64ExtendI32S | I64ExtendI32U
  | I64TruncF32S | I64TruncF32U | I64TruncF64S | I64TruncF64U
  | F32ConvertI32S | F32ConvertI32U | F32ConvertI64S | F32ConvertI64U
  | F32DemoteF64
  | F64ConvertI32S | F64ConvertI32U | F64ConvertI64S | F64ConvertI64U
  | F64PromoteF32
  | I32ReinterpretF32 | I64ReinterpretF64 | F32ReinterpretI32 | F64ReinterpretI64
  (* non-trapping float-to-int conversions (post-MVP) *)
  | I32TruncSatF32S | I32TruncSatF32U | I32TruncSatF64S | I32TruncSatF64U
  | I64TruncSatF32S | I64TruncSatF32U | I64TruncSatF64S | I64TruncSatF64U

type pack_size = Pack8 | Pack16 | Pack32
type extension = SX | ZX

type loadop = {
  lty : num_type;
  lalign : int;  (** log2 of the alignment *)
  loffset : int;
  lpack : (pack_size * extension) option;
}

type storeop = {
  sty : num_type;
  salign : int;
  soffset : int;
  spack : pack_size option;
}

(** MVP block types: no result or a single result. *)
type block_type = value_type option

type instr =
  | Unreachable
  | Nop
  | Block of block_type
  | Loop of block_type
  | If of block_type
  | Else
  | End
  | Br of int
  | BrIf of int
  | BrTable of int list * int  (** table, default *)
  | Return
  | Call of int
  | CallIndirect of int  (** type index *)
  | Drop
  | Select
  | LocalGet of int
  | LocalSet of int
  | LocalTee of int
  | GlobalGet of int
  | GlobalSet of int
  | Load of loadop
  | Store of storeop
  | MemorySize
  | MemoryGrow
  | Const of Value.t
  | Test of testop
  | Compare of relop
  | Unary of unop
  | Binary of binop
  | Convert of cvtop

type func = {
  ftype : int;  (** index into the module's type section *)
  locals : value_type list;
  body : instr list;  (** implicitly terminated by a final [End] in binary *)
}

type global = {
  gtype : global_type;
  ginit : instr list;  (** constant expression *)
}

type import_desc =
  | FuncImport of int  (** type index *)
  | TableImport of table_type
  | MemoryImport of memory_type
  | GlobalImport of global_type

type import = {
  module_name : string;
  item_name : string;
  idesc : import_desc;
}

type export_desc =
  | FuncExport of int
  | TableExport of int
  | MemoryExport of int
  | GlobalExport of int

type export = {
  name : string;
  edesc : export_desc;
}

type elem_segment = {
  etable : int;
  eoffset : instr list;  (** constant expression *)
  einit : int list;  (** function indices *)
}

type data_segment = {
  dmemory : int;
  doffset : instr list;  (** constant expression *)
  dinit : string;
}

type module_ = {
  types : func_type list;
  imports : import list;
  funcs : func list;
  tables : table_type list;
  memories : memory_type list;
  globals : global list;
  exports : export list;
  start : int option;
  elems : elem_segment list;
  datas : data_segment list;
}


val empty_module : module_

val num_imported_funcs : module_ -> int
(** Imported functions occupy the first indices of the function index
    space (and similarly for the other index spaces below). *)

val num_imported_globals : module_ -> int
val num_imported_tables : module_ -> int
val num_imported_memories : module_ -> int

val num_funcs : module_ -> int
(** Total size of the function index space. *)

val func_type_at : module_ -> int -> Types.func_type
(** Type of the function at an index of the function index space. *)

val global_type_at : module_ -> int -> Types.global_type

val instruction_count : module_ -> int
(** Number of instructions in all function bodies, counting block
    delimiters. *)

val string_of_instr : instr -> string
(** Human-readable mnemonic, e.g. ["i32.add"], ["local.get 0"]. *)
