(** Emission of the WebAssembly binary format (MVP, version 1). *)

open Types
open Ast

let ( <+> ) buf byte = Buffer.add_char buf (Char.chr byte)

let value_type_byte = function
  | I32T -> 0x7F
  | I64T -> 0x7E
  | F32T -> 0x7D
  | F64T -> 0x7C

let write_value_type buf t = buf <+> value_type_byte t

let write_block_type buf = function
  | None -> buf <+> 0x40
  | Some t -> write_value_type buf t

let write_name buf s =
  Leb128.write_uint buf (String.length s);
  Buffer.add_string buf s

let write_limits buf { lim_min; lim_max } =
  match lim_max with
  | None ->
    buf <+> 0x00;
    Leb128.write_uint buf lim_min
  | Some max ->
    buf <+> 0x01;
    Leb128.write_uint buf lim_min;
    Leb128.write_uint buf max

let write_global_type buf { content; mutability } =
  write_value_type buf content;
  buf <+> (match mutability with Immutable -> 0x00 | Mutable -> 0x01)

let write_func_type buf { params; results } =
  buf <+> 0x60;
  Leb128.write_uint buf (List.length params);
  List.iter (write_value_type buf) params;
  Leb128.write_uint buf (List.length results);
  List.iter (write_value_type buf) results

let write_memarg buf align offset =
  Leb128.write_uint buf align;
  Leb128.write_uint buf offset

let load_opcode { lty; lpack; _ } =
  match lty, lpack with
  | I32T, None -> 0x28
  | I64T, None -> 0x29
  | F32T, None -> 0x2A
  | F64T, None -> 0x2B
  | I32T, Some (Pack8, SX) -> 0x2C
  | I32T, Some (Pack8, ZX) -> 0x2D
  | I32T, Some (Pack16, SX) -> 0x2E
  | I32T, Some (Pack16, ZX) -> 0x2F
  | I64T, Some (Pack8, SX) -> 0x30
  | I64T, Some (Pack8, ZX) -> 0x31
  | I64T, Some (Pack16, SX) -> 0x32
  | I64T, Some (Pack16, ZX) -> 0x33
  | I64T, Some (Pack32, SX) -> 0x34
  | I64T, Some (Pack32, ZX) -> 0x35
  | _ -> invalid_arg "Encode: invalid load operator"

let store_opcode { sty; spack; _ } =
  match sty, spack with
  | I32T, None -> 0x36
  | I64T, None -> 0x37
  | F32T, None -> 0x38
  | F64T, None -> 0x39
  | I32T, Some Pack8 -> 0x3A
  | I32T, Some Pack16 -> 0x3B
  | I64T, Some Pack8 -> 0x3C
  | I64T, Some Pack16 -> 0x3D
  | I64T, Some Pack32 -> 0x3E
  | _ -> invalid_arg "Encode: invalid store operator"

let test_opcode = function
  | IEqz S32 -> 0x45
  | IEqz S64 -> 0x50

let rel_opcode = function
  | IRel (S32, op) ->
    0x46 + (match op with
      | Eq -> 0 | Ne -> 1 | LtS -> 2 | LtU -> 3 | GtS -> 4
      | GtU -> 5 | LeS -> 6 | LeU -> 7 | GeS -> 8 | GeU -> 9)
  | IRel (S64, op) ->
    0x51 + (match op with
      | Eq -> 0 | Ne -> 1 | LtS -> 2 | LtU -> 3 | GtS -> 4
      | GtU -> 5 | LeS -> 6 | LeU -> 7 | GeS -> 8 | GeU -> 9)
  | FRel (SF32, op) ->
    0x5B + (match op with FEq -> 0 | FNe -> 1 | FLt -> 2 | FGt -> 3 | FLe -> 4 | FGe -> 5)
  | FRel (SF64, op) ->
    0x61 + (match op with FEq -> 0 | FNe -> 1 | FLt -> 2 | FGt -> 3 | FLe -> 4 | FGe -> 5)

let un_opcode = function
  | IUn (S32, Ext8S) -> 0xC0
  | IUn (S32, Ext16S) -> 0xC1
  | IUn (S64, Ext8S) -> 0xC2
  | IUn (S64, Ext16S) -> 0xC3
  | IUn (S64, Ext32S) -> 0xC4
  | IUn (S32, Ext32S) -> invalid_arg "Encode: i32.extend32_s does not exist"
  | IUn (S32, op) -> 0x67 + (match op with Clz -> 0 | Ctz -> 1 | Popcnt -> 2 | _ -> assert false)
  | IUn (S64, op) -> 0x79 + (match op with Clz -> 0 | Ctz -> 1 | Popcnt -> 2 | _ -> assert false)
  | FUn (SF32, op) ->
    0x8B + (match op with
      | Abs -> 0 | Neg -> 1 | Ceil -> 2 | Floor -> 3 | Trunc -> 4 | Nearest -> 5 | Sqrt -> 6)
  | FUn (SF64, op) ->
    0x99 + (match op with
      | Abs -> 0 | Neg -> 1 | Ceil -> 2 | Floor -> 3 | Trunc -> 4 | Nearest -> 5 | Sqrt -> 6)

let bin_opcode = function
  | IBin (S32, op) ->
    0x6A + (match op with
      | Add -> 0 | Sub -> 1 | Mul -> 2 | DivS -> 3 | DivU -> 4 | RemS -> 5 | RemU -> 6
      | And -> 7 | Or -> 8 | Xor -> 9 | Shl -> 10 | ShrS -> 11 | ShrU -> 12
      | Rotl -> 13 | Rotr -> 14)
  | IBin (S64, op) ->
    0x7C + (match op with
      | Add -> 0 | Sub -> 1 | Mul -> 2 | DivS -> 3 | DivU -> 4 | RemS -> 5 | RemU -> 6
      | And -> 7 | Or -> 8 | Xor -> 9 | Shl -> 10 | ShrS -> 11 | ShrU -> 12
      | Rotl -> 13 | Rotr -> 14)
  | FBin (SF32, op) ->
    0x92 + (match op with
      | FAdd -> 0 | FSub -> 1 | FMul -> 2 | FDiv -> 3 | Min -> 4 | Max -> 5 | CopySign -> 6)
  | FBin (SF64, op) ->
    0xA0 + (match op with
      | FAdd -> 0 | FSub -> 1 | FMul -> 2 | FDiv -> 3 | Min -> 4 | Max -> 5 | CopySign -> 6)

(* saturating truncations live under the 0xFC prefix *)
let trunc_sat_subop = function
  | I32TruncSatF32S -> Some 0
  | I32TruncSatF32U -> Some 1
  | I32TruncSatF64S -> Some 2
  | I32TruncSatF64U -> Some 3
  | I64TruncSatF32S -> Some 4
  | I64TruncSatF32U -> Some 5
  | I64TruncSatF64S -> Some 6
  | I64TruncSatF64U -> Some 7
  | _ -> None

let cvt_opcode = function
  | I32WrapI64 -> 0xA7
  | I32TruncF32S -> 0xA8
  | I32TruncF32U -> 0xA9
  | I32TruncF64S -> 0xAA
  | I32TruncF64U -> 0xAB
  | I64ExtendI32S -> 0xAC
  | I64ExtendI32U -> 0xAD
  | I64TruncF32S -> 0xAE
  | I64TruncF32U -> 0xAF
  | I64TruncF64S -> 0xB0
  | I64TruncF64U -> 0xB1
  | F32ConvertI32S -> 0xB2
  | F32ConvertI32U -> 0xB3
  | F32ConvertI64S -> 0xB4
  | F32ConvertI64U -> 0xB5
  | F32DemoteF64 -> 0xB6
  | F64ConvertI32S -> 0xB7
  | F64ConvertI32U -> 0xB8
  | F64ConvertI64S -> 0xB9
  | F64ConvertI64U -> 0xBA
  | F64PromoteF32 -> 0xBB
  | I32ReinterpretF32 -> 0xBC
  | I64ReinterpretF64 -> 0xBD
  | F32ReinterpretI32 -> 0xBE
  | F64ReinterpretI64 -> 0xBF
  | I32TruncSatF32S | I32TruncSatF32U | I32TruncSatF64S | I32TruncSatF64U
  | I64TruncSatF32S | I64TruncSatF32U | I64TruncSatF64S | I64TruncSatF64U ->
    invalid_arg "Encode: saturating truncation uses the 0xFC prefix"

let add_i32_le buf (x : int32) =
  for i = 0 to 3 do
    buf <+> Int32.to_int (Int32.logand (Int32.shift_right_logical x (8 * i)) 0xFFl)
  done

let add_i64_le buf (x : int64) =
  for i = 0 to 7 do
    buf <+> Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * i)) 0xFFL)
  done

let write_instr buf instr =
  match instr with
  | Unreachable -> buf <+> 0x00
  | Nop -> buf <+> 0x01
  | Block bt -> buf <+> 0x02; write_block_type buf bt
  | Loop bt -> buf <+> 0x03; write_block_type buf bt
  | If bt -> buf <+> 0x04; write_block_type buf bt
  | Else -> buf <+> 0x05
  | End -> buf <+> 0x0B
  | Br l -> buf <+> 0x0C; Leb128.write_uint buf l
  | BrIf l -> buf <+> 0x0D; Leb128.write_uint buf l
  | BrTable (ls, d) ->
    buf <+> 0x0E;
    Leb128.write_uint buf (List.length ls);
    List.iter (Leb128.write_uint buf) ls;
    Leb128.write_uint buf d
  | Return -> buf <+> 0x0F
  | Call f -> buf <+> 0x10; Leb128.write_uint buf f
  | CallIndirect t -> buf <+> 0x11; Leb128.write_uint buf t; buf <+> 0x00
  | Drop -> buf <+> 0x1A
  | Select -> buf <+> 0x1B
  | LocalGet i -> buf <+> 0x20; Leb128.write_uint buf i
  | LocalSet i -> buf <+> 0x21; Leb128.write_uint buf i
  | LocalTee i -> buf <+> 0x22; Leb128.write_uint buf i
  | GlobalGet i -> buf <+> 0x23; Leb128.write_uint buf i
  | GlobalSet i -> buf <+> 0x24; Leb128.write_uint buf i
  | Load op -> buf <+> load_opcode op; write_memarg buf op.lalign op.loffset
  | Store op -> buf <+> store_opcode op; write_memarg buf op.salign op.soffset
  | MemorySize -> buf <+> 0x3F; buf <+> 0x00
  | MemoryGrow -> buf <+> 0x40; buf <+> 0x00
  | Const (Value.I32 x) -> buf <+> 0x41; Leb128.write_s32 buf x
  | Const (Value.I64 x) -> buf <+> 0x42; Leb128.write_s64 buf x
  | Const (Value.F32 bits) -> buf <+> 0x43; add_i32_le buf bits
  | Const (Value.F64 f) -> buf <+> 0x44; add_i64_le buf (Int64.bits_of_float f)
  | Test op -> buf <+> test_opcode op
  | Compare op -> buf <+> rel_opcode op
  | Unary op -> buf <+> un_opcode op
  | Binary op -> buf <+> bin_opcode op
  | Convert op ->
    (match trunc_sat_subop op with
     | Some sub ->
       buf <+> 0xFC;
       Leb128.write_uint buf sub
     | None -> buf <+> cvt_opcode op)

let write_expr buf instrs =
  List.iter (write_instr buf) instrs;
  buf <+> 0x0B

(** Write a section: id byte, payload size, payload. Empty sections are
    omitted entirely. *)
let write_section buf id payload =
  if Buffer.length payload > 0 then begin
    buf <+> id;
    Leb128.write_uint buf (Buffer.length payload);
    Buffer.add_buffer buf payload
  end

(** [hint] estimates the payload bytes per element, so section buffers
    start near their final size instead of doubling up from 256. *)
let write_vec_section ?(hint = 8) buf id items write_item =
  if items <> [] then begin
    let n = List.length items in
    let payload = Buffer.create (8 + (n * hint)) in
    Leb128.write_uint payload n;
    List.iter (write_item payload) items;
    write_section buf id payload
  end

(** The code section encodes locals as (count, type) runs of consecutive
    equal types. Both passes below walk the runs directly — no
    intermediate group list is accumulated and reversed. *)
let count_local_groups locals =
  let rec go n prev = function
    | [] -> n
    | t :: rest -> if prev == t then go n prev rest else go (n + 1) t rest
  in
  match locals with [] -> 0 | t :: rest -> go 1 t rest

let write_local_groups body locals =
  let rec run n t = function
    | t' :: rest when t' == t -> run (n + 1) t rest
    | rest ->
      Leb128.write_uint body n;
      write_value_type body t;
      (match rest with [] -> () | t' :: rest' -> run 1 t' rest')
  in
  match locals with [] -> () | t :: rest -> run 1 t rest

let write_code buf (f : func) =
  (* size hint: instructions encode to a handful of bytes each, local
     runs to two; undershooting only costs one final grow *)
  let body = Buffer.create (16 + (2 * List.length f.locals) + (4 * List.length f.body)) in
  Leb128.write_uint body (count_local_groups f.locals);
  write_local_groups body f.locals;
  write_expr body f.body;
  Leb128.write_uint buf (Buffer.length body);
  Buffer.add_buffer buf body

let write_import buf { module_name; item_name; idesc } =
  write_name buf module_name;
  write_name buf item_name;
  match idesc with
  | FuncImport ti -> buf <+> 0x00; Leb128.write_uint buf ti
  | TableImport tt -> buf <+> 0x01; buf <+> 0x70; write_limits buf tt.tbl_limits
  | MemoryImport mt -> buf <+> 0x02; write_limits buf mt.mem_limits
  | GlobalImport gt -> buf <+> 0x03; write_global_type buf gt

let write_export buf { name; edesc } =
  write_name buf name;
  match edesc with
  | FuncExport i -> buf <+> 0x00; Leb128.write_uint buf i
  | TableExport i -> buf <+> 0x01; Leb128.write_uint buf i
  | MemoryExport i -> buf <+> 0x02; Leb128.write_uint buf i
  | GlobalExport i -> buf <+> 0x03; Leb128.write_uint buf i

(** Serialize a module to its binary representation. *)
let encode (m : module_) : string =
  Obs.Span.with_ "encode" @@ fun () ->
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "\x00asm";
  Buffer.add_string buf "\x01\x00\x00\x00";
  write_vec_section buf 1 m.types (fun b t -> write_func_type b t);
  write_vec_section buf 2 m.imports write_import;
  write_vec_section buf 3 m.funcs (fun b f -> Leb128.write_uint b f.ftype);
  write_vec_section buf 4 m.tables (fun b t -> b <+> 0x70; write_limits b t.tbl_limits);
  write_vec_section buf 5 m.memories (fun b mt -> write_limits b mt.mem_limits);
  write_vec_section buf 6 m.globals
    (fun b g ->
       write_global_type b g.gtype;
       write_expr b g.ginit);
  write_vec_section buf 7 m.exports write_export;
  (match m.start with
   | None -> ()
   | Some f ->
     let payload = Buffer.create 4 in
     Leb128.write_uint payload f;
     write_section buf 8 payload);
  write_vec_section buf 9 m.elems
    (fun b e ->
       Leb128.write_uint b e.etable;
       write_expr b e.eoffset;
       Leb128.write_uint b (List.length e.einit);
       List.iter (Leb128.write_uint b) e.einit);
  write_vec_section buf 10 m.funcs write_code;
  write_vec_section buf 11 m.datas
    (fun b d ->
       Leb128.write_uint b d.dmemory;
       write_expr b d.doffset;
       Leb128.write_uint b (String.length d.dinit);
       Buffer.add_string b d.dinit);
  Buffer.contents buf

(** Encoded size in bytes, without materialising intermediate strings more
    than once. *)
let size m = String.length (encode m)
