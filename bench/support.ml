(** Shared machinery for the benchmark harness: wall-clock timing,
    module replication (to obtain multi-megabyte binaries for the
    instrumentation-throughput experiment), and result formatting. *)

open Wasm

let now () = Unix.gettimeofday ()

(** Wall-clock seconds of [f ()], best of [reps]. *)
let time_best ?(reps = 3) f =
  let rec go best k =
    if k = 0 then best
    else begin
      let t0 = now () in
      ignore (f ());
      let d = now () -. t0 in
      go (Float.min best d) (k - 1)
    end
  in
  go infinity reps

(** Mean and standard deviation of [reps] timed runs of [f]. *)
let time_stats ~reps f =
  let samples =
    List.init reps (fun _ ->
      let t0 = now () in
      ignore (f ());
      now () -. t0)
  in
  let n = float_of_int reps in
  let mean = List.fold_left ( +. ) 0.0 samples /. n in
  let var = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples /. n in
  (mean, sqrt var)

(** Replicate the defined functions of [m] [copies] extra times, fixing
    intra-copy call targets, to scale a realistic module to megabyte
    sizes. Exports, table and start keep pointing at the original copy. *)
let replicate_module (m : Ast.module_) ~copies : Ast.module_ =
  let n_imp = Ast.num_imported_funcs m in
  let n_def = List.length m.Ast.funcs in
  let shift_call k instr =
    match instr with
    | Ast.Call f when f >= n_imp -> Ast.Call (f + (k * n_def))
    | i -> i
  in
  let copy k =
    List.map
      (fun (f : Ast.func) -> { f with Ast.body = List.map (shift_call k) f.Ast.body })
      m.Ast.funcs
  in
  let extra = List.concat (List.init copies (fun k -> copy (k + 1))) in
  { m with Ast.funcs = m.Ast.funcs @ extra }

(** Count non-empty, non-comment lines of OCaml source, as the paper
    counts analysis LoC (Table 4). Block comments [(* ... *)] may span
    lines and nest; a line counts when any non-whitespace appears outside
    a comment. String literals are not special-cased — a ["(*"] inside a
    string would be miscounted, which the analysis sources avoid. *)
let ml_loc_of_string src =
  let n = String.length src in
  let count = ref 0 and depth = ref 0 in
  let line_has_code = ref false in
  let i = ref 0 in
  let flush_line () =
    if !line_has_code then incr count;
    line_has_code := false
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      flush_line ();
      incr i
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      incr depth;
      i := !i + 2
    end
    else if !depth > 0 then
      if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        decr depth;
        i := !i + 2
      end
      else incr i
    else begin
      if c <> ' ' && c <> '\t' && c <> '\r' then line_has_code := true;
      incr i
    end
  done;
  flush_line ();
  !count

(** [ml_loc_of_string] over a file; 0 when the file is not readable (the
    benchmark may run outside the repo root). *)
let ml_loc_of_file file =
  match In_channel.with_open_bin file In_channel.input_all with
  | src -> ml_loc_of_string src
  | exception Sys_error _ -> 0

let kb bytes = float_of_int bytes /. 1024.0
let mb bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let pct x = 100.0 *. x

(** Geometric mean. *)
let geomean = function
  | [] -> nan
  | xs ->
    let n = float_of_int (List.length xs) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

(** Run an instrumented module with the empty analysis; returns wall time. *)
let run_instrumented (res : Wasabi.Instrument.result) =
  let inst, _rt = Wasabi.Runtime.instantiate res Wasabi.Analysis.default in
  let t0 = now () in
  ignore (Interp.invoke_export inst "run" []);
  now () -. t0

let run_uninstrumented (m : Ast.module_) =
  let inst = Interp.instantiate ~imports:[] m in
  let t0 = now () in
  ignore (Interp.invoke_export inst "run" []);
  now () -. t0

(** Wall time of invoking the exported [run] [iters] times on an existing
    instance (the corpus entries are idempotent). *)
let invoke_run_n inst iters =
  let t0 = now () in
  for _ = 1 to iters do
    ignore (Interp.invoke_export inst "run" [])
  done;
  now () -. t0

(** Number of iterations needed for the uninstrumented program to run for
    about [target] seconds, so relative-runtime measurements rise above
    timer noise. *)
let calibrated_iters (m : Ast.module_) ~target =
  let inst = Interp.instantiate ~imports:[] m in
  let once = invoke_run_n inst 1 in
  max 1 (int_of_float (target /. Float.max 1e-6 once))

(** Interpreter throughput of invoking the exported [run] [iters] times:
    (instructions executed, wall seconds, instructions/second). Relies on
    [Interp.steps] counting retired instructions. *)
let interp_rate inst ~iters =
  let s0 = inst.Interp.steps in
  let t = invoke_run_n inst iters in
  let steps = inst.Interp.steps - s0 in
  (steps, t, float_of_int steps /. Float.max 1e-9 t)

let median xs =
  match List.sort Float.compare xs with
  | [] -> nan
  | sorted ->
    let n = List.length sorted in
    List.nth sorted (n / 2)

(** Relative runtime of [instrumented] vs [baseline]: measurements are
    interleaved (base, instr, base, instr, ...) and the median of the
    per-pair ratios is reported, cancelling slow machine drift. *)
let paired_overhead ~reps ~iters base_inst instr_inst =
  let ratios =
    List.init reps (fun _ ->
      let tb = invoke_run_n base_inst iters in
      let ti = invoke_run_n instr_inst iters in
      ti /. Float.max 1e-9 tb)
  in
  median ratios
