(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (Section 4).

      table4    analyses, hooks used, lines of code (RQ1)
      rq2       faithfulness of instrumented execution (RQ2)
      table5    time to instrument, binary sizes, throughput (RQ3)
      fig8      binary size increase per hook group (RQ4)
      monomorph on-demand monomorphization statistics (Section 4.5)
      fig9      runtime overhead per hook group (RQ5)
      ablation  design-choice ablations (i64 splitting)

    Run with a subcommand to regenerate one experiment, or with no
    arguments to run all of them. Numbers are produced by our Wasm
    interpreter rather than a browser, so absolute values differ from the
    paper; EXPERIMENTS.md records the shape comparison. *)

open Wasm
open Bench_support
module W = Wasabi
module H = Wasabi.Hook

(* problem sizes: small enough for interpreted, fully instrumented runs *)
let corpus_fig9 = lazy (Workloads.Corpus.make ~n:6 ~scale:1 ())
let corpus_static = lazy (Workloads.Corpus.make ~n:8 ~scale:1 ())

let group_columns = H.figure_groups

let instrument_for groups m = W.Instrument.instrument ~groups m

(* ------------------------------------------------------------------ *)
(* Table 4: the eight analyses (RQ1)                                   *)
(* ------------------------------------------------------------------ *)

(* non-empty, non-comment lines of the analysis source, as the paper
   counts analysis LoC; block-comment aware (see Support.ml_loc_of_string) *)
let analysis_loc = Support.ml_loc_of_file

let group_names gs =
  if H.Group_set.equal gs H.all then "all"
  else String.concat ", " (List.map H.group_name (H.Group_set.elements gs))

let table4 () =
  Support.hr "Table 4: analyses built on top of Wasabi (RQ1)";
  let rows =
    [ ("Instruction mix analysis", Analyses.Instruction_mix.groups, "instruction_mix");
      ("Basic block profiling", Analyses.Basic_block_profiling.groups, "basic_block_profiling");
      ("Instruction coverage", Analyses.Instruction_coverage.groups, "instruction_coverage");
      ("Branch coverage", Analyses.Branch_coverage.groups, "branch_coverage");
      ("Call graph analysis", Analyses.Call_graph.groups, "call_graph");
      ("Dynamic taint analysis", Analyses.Taint.groups, "taint");
      ("Cryptominer detection", Analyses.Cryptominer.groups, "cryptominer");
      ("Memory access tracing", Analyses.Memory_tracing.groups, "memory_tracing") ]
  in
  Printf.printf "%-28s %-42s %5s\n" "Analysis" "Hooks" "LOC";
  List.iter
    (fun (name, groups, file) ->
       let loc = analysis_loc (Printf.sprintf "lib/analyses/%s.ml" file) in
       Printf.printf "%-28s %-42s %5d\n" name (group_names groups) loc)
    rows;
  (* demonstrate each analysis end to end on one program *)
  let entry = Workloads.Corpus.find (Lazy.force corpus_fig9) "gemm" in
  let show name groups analysis report =
    let res = instrument_for groups entry.Workloads.Corpus.module_ in
    let inst, _ = W.Runtime.instantiate res analysis in
    ignore (Interp.invoke_export inst "run" []);
    Printf.printf "  [%s on gemm] %s" name (report ())
  in
  print_newline ();
  let mix = Analyses.Instruction_mix.create () in
  show "instruction mix" Analyses.Instruction_mix.groups (Analyses.Instruction_mix.analysis mix)
    (fun () ->
       Printf.sprintf "%d instructions executed, top op: %s\n"
         (Analyses.Instruction_mix.total mix)
         (match Analyses.Instruction_mix.sorted mix with
          | (op, n) :: _ -> Printf.sprintf "%s (%d)" op n
          | [] -> "-"));
  let bb = Analyses.Basic_block_profiling.create () in
  show "basic blocks" Analyses.Basic_block_profiling.groups
    (Analyses.Basic_block_profiling.analysis bb)
    (fun () ->
       Printf.sprintf "%d distinct blocks executed\n"
         (List.length (Analyses.Basic_block_profiling.hottest bb)));
  let cov = Analyses.Instruction_coverage.create () in
  show "instr coverage" Analyses.Instruction_coverage.groups
    (Analyses.Instruction_coverage.analysis cov)
    (fun () ->
       Printf.sprintf "%.1f%% of static instructions executed\n"
         (100.0 *. Analyses.Instruction_coverage.coverage cov entry.Workloads.Corpus.module_));
  let bc = Analyses.Branch_coverage.create () in
  show "branch coverage" Analyses.Branch_coverage.groups (Analyses.Branch_coverage.analysis bc)
    (fun () ->
       Printf.sprintf "%d branch locations, %d one-sided\n"
         (Analyses.Branch_coverage.covered_locations bc)
         (List.length (Analyses.Branch_coverage.partially_covered bc)));
  let cg = Analyses.Call_graph.create () in
  show "call graph" Analyses.Call_graph.groups (Analyses.Call_graph.analysis cg)
    (fun () -> Analyses.Call_graph.report cg);
  let taint = Analyses.Taint.create () in
  show "taint" Analyses.Taint.groups (Analyses.Taint.analysis taint)
    (fun () -> Analyses.Taint.report taint);
  let miner = Analyses.Cryptominer.create () in
  show "cryptominer" Analyses.Cryptominer.groups (Analyses.Cryptominer.analysis miner)
    (fun () ->
       Printf.sprintf "signature ratio %.2f, miner=%b\n"
         (Analyses.Cryptominer.signature_ratio miner)
         (Analyses.Cryptominer.looks_like_miner miner));
  let mt = Analyses.Memory_tracing.create () in
  show "memory tracing" Analyses.Memory_tracing.groups (Analyses.Memory_tracing.analysis mt)
    (fun () -> Analyses.Memory_tracing.report mt)

(* ------------------------------------------------------------------ *)
(* RQ2: faithfulness                                                   *)
(* ------------------------------------------------------------------ *)

let rq2 () =
  Support.hr "RQ2: faithfulness of fully instrumented execution";
  let entries = Lazy.force corpus_fig9 in
  let ok = ref 0 and bad = ref 0 in
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let reference = Workloads.Corpus.run_reference e in
       let res = W.Instrument.instrument e.module_ in
       (try Validate.validate_module res.W.Instrument.instrumented
        with Validate.Invalid msg ->
          incr bad;
          Printf.printf "  %-16s INVALID instrumented module: %s\n" e.name msg);
       let inst, _ = W.Runtime.instantiate res W.Analysis.default in
       let result =
         match Interp.invoke_export inst "run" [] with
         | [ Value.F64 x ] -> x
         | _ -> nan
       in
       if Float.equal reference result || Float.abs (reference -. result) < 1e-9 then incr ok
       else begin
         incr bad;
         Printf.printf "  %-16s MISMATCH: %.9f vs %.9f\n" e.name reference result
       end)
    entries;
  Printf.printf "  %d/%d programs behave identically after full instrumentation\n" !ok (!ok + !bad);
  Printf.printf "  (paper: all 32 programs unchanged; validator passes on all)\n"

(* ------------------------------------------------------------------ *)
(* Table 5: instrumentation time (RQ3)                                 *)
(* ------------------------------------------------------------------ *)

let table5 () =
  Support.hr "Table 5: time to instrument (RQ3)";
  Printf.printf "%-22s %12s %16s %10s\n" "Program" "Size (B)" "Time (ms)" "MB/s";
  let reps = 5 in
  let row name (m : Ast.module_) =
    let size = String.length (Encode.encode m) in
    let mean_s, sd_s = Support.time_stats ~reps (fun () -> W.Instrument.instrument m) in
    Printf.printf "%-22s %12d %9.2f ± %4.2f %10.2f\n" name size (mean_s *. 1000.0)
      (sd_s *. 1000.0)
      (Support.mb size /. mean_s)
  in
  let entries = Lazy.force corpus_static in
  let pb = Workloads.Corpus.polybench entries in
  (* PolyBench average, as in the paper's presentation *)
  let sizes =
    List.map
      (fun (e : Workloads.Corpus.entry) -> String.length (Encode.encode e.module_))
      pb
  in
  let times =
    List.map
      (fun (e : Workloads.Corpus.entry) ->
         fst (Support.time_stats ~reps (fun () -> W.Instrument.instrument e.module_)))
      pb
  in
  let avg_size = Support.mean (List.map float_of_int sizes) in
  let avg_time = Support.mean times in
  Printf.printf "%-22s %12.0f %9.2f %17.2f\n" "PolyBench (avg of 30)" avg_size
    (avg_time *. 1000.0)
    (avg_size /. (1024.0 *. 1024.0) /. avg_time);
  List.iter
    (fun (e : Workloads.Corpus.entry) -> row e.name e.module_)
    (Workloads.Corpus.realworld entries);
  (* replicate pdfkit to megabyte scale for a throughput measurement
     comparable to the paper's 9.6 MB / 39.5 MB binaries *)
  let pdfkit = (Workloads.Corpus.find entries "pdfkit").module_ in
  List.iter
    (fun copies ->
       let big = Support.replicate_module pdfkit ~copies in
       row (Printf.sprintf "pdfkit x%d" (copies + 1)) big)
    [ 99; 499 ];
  (* parallel instrumentation (paper, Section 3: 4 threads on 2 cores cut
     Unreal's time to ~0.58x of single-threaded) *)
  let big = Support.replicate_module pdfkit ~copies:499 in
  let serial = Support.time_best ~reps:3 (fun () -> W.Instrument.instrument big) in
  let cores = Domain.recommended_domain_count () in
  let par =
    Support.time_best ~reps:3 (fun () -> W.Instrument.instrument ~domains:cores big)
  in
  Printf.printf "%-22s %12s %9.2f %17s\n"
    (Printf.sprintf "pdfkit x500, %d domains" cores) "" (par *. 1000.0) "";
  Printf.printf "  parallel / serial instrumentation time: %.2fx (paper: 0.58x, 4 threads / 2 cores)\n"
    (par /. serial);
  Printf.printf "  (paper: PolyBench 23 ms avg, PSPDFKit 5.1 s, Unreal 15.5 s;\n";
  Printf.printf "   throughput grows with binary size: 1.15 -> 2.55 MB/s)\n"

(* ------------------------------------------------------------------ *)
(* Figure 8: code size increase per hook (RQ4)                         *)
(* ------------------------------------------------------------------ *)

let size_increase m groups =
  let original = String.length (Encode.encode m) in
  let res = instrument_for groups m in
  let instrumented = String.length (Encode.encode res.W.Instrument.instrumented) in
  float_of_int (instrumented - original) /. float_of_int original

let fig8 () =
  Support.hr "Figure 8: binary size increase per instrumented hook (RQ4)";
  let entries = Lazy.force corpus_static in
  let pb = Workloads.Corpus.polybench entries in
  let pdfkit = (Workloads.Corpus.find entries "pdfkit").module_ in
  let zen = (Workloads.Corpus.find entries "zen_garden").module_ in
  Printf.printf "%-14s %16s %10s %12s\n" "Hook" "PolyBench(mean)" "pdfkit" "zen_garden";
  let row name groups =
    let pb_incs =
      List.map (fun (e : Workloads.Corpus.entry) -> size_increase e.module_ groups) pb
    in
    Printf.printf "%-14s %15.1f%% %9.1f%% %11.1f%%\n" name
      (Support.pct (Support.mean pb_incs))
      (Support.pct (size_increase pdfkit groups))
      (Support.pct (size_increase zen groups))
  in
  List.iter (fun g -> row (H.group_name g) (H.Group_set.singleton g)) group_columns;
  row "all" H.all;
  Printf.printf "  (paper: <1%% for nop..br_table; load/store 39-58%%; const 59-71%%;\n";
  Printf.printf "   local 128-180%%; binary 83-190%%; all 495-743%%)\n"

(* ------------------------------------------------------------------ *)
(* Section 4.5: on-demand monomorphization                             *)
(* ------------------------------------------------------------------ *)

let monomorph () =
  Support.hr "Section 4.5: on-demand monomorphization of low-level hooks";
  let entries = Lazy.force corpus_static in
  let pb = Workloads.Corpus.polybench entries in
  let counts =
    List.map
      (fun (e : Workloads.Corpus.entry) ->
         (W.Instrument.instrument e.module_).W.Instrument.metadata.W.Metadata.num_hooks)
      pb
  in
  Printf.printf "  PolyBench hooks generated on demand: min %d, max %d\n"
    (List.fold_left min max_int counts)
    (List.fold_left max 0 counts);
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let res = W.Instrument.instrument e.module_ in
       let meta = res.W.Instrument.metadata in
       (* widest call signature actually present *)
       let max_params =
         Array.to_list meta.W.Metadata.hook_specs
         |> List.filter_map (function
           | H.S_call_pre (tys, _) -> Some (List.length tys)
           | _ -> None)
         |> List.fold_left max 0
       in
       Printf.printf
         "  %-12s %4d hooks on demand; eager bound for calls up to %d params: %.3g\n"
         e.name meta.W.Metadata.num_hooks max_params
         (H.eager_call_hook_count ~max_params))
    (Workloads.Corpus.realworld entries);
  Printf.printf "  (paper: PolyBench 110-122 hooks, PSPDFKit 302, Unreal 783;\n";
  Printf.printf "   eager generation would need 4^22 ~ 1.7e13 call hooks alone)\n"

(* ------------------------------------------------------------------ *)
(* Figure 9: runtime overhead per hook (RQ5)                           *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  Support.hr "Figure 9: relative runtime per instrumented hook (RQ5)";
  let entries = Lazy.force corpus_fig9 in
  let pb = Workloads.Corpus.polybench entries in
  let pdfkit = (Workloads.Corpus.find entries "pdfkit").module_ in
  let zen = (Workloads.Corpus.find entries "zen_garden").module_ in
  (* calibrate iteration counts so every baseline measurement is well
     above timer noise; WASABI_BENCH_FAST=1 trades accuracy for speed *)
  let fast = Sys.getenv_opt "WASABI_BENCH_FAST" <> None in
  let target = if fast then 0.002 else 0.006 in
  let reps = if fast then 3 else 5 in
  let prepare m =
    let iters = Support.calibrated_iters m ~target in
    let inst = Interp.instantiate ~imports:[] m in
    (iters, inst)
  in
  let pb_prep = List.map (fun (e : Workloads.Corpus.entry) -> prepare e.module_) pb in
  let pdfkit_prep = prepare pdfkit in
  let zen_prep = prepare zen in
  let overhead m (iters, base_inst) groups =
    let res = instrument_for groups m in
    let inst, _ = W.Runtime.instantiate res W.Analysis.default in
    Support.paired_overhead ~reps ~iters base_inst inst
  in
  Printf.printf "%-14s %16s %10s %12s\n" "Hook" "PolyBench(mean)" "pdfkit" "zen_garden";
  let row name groups =
    let pb_ovh =
      List.map2
        (fun (e : Workloads.Corpus.entry) prep -> overhead e.module_ prep groups)
        pb pb_prep
    in
    Printf.printf "%-14s %15.2fx %9.2fx %11.2fx\n" name (Support.geomean pb_ovh)
      (overhead pdfkit pdfkit_prep groups)
      (overhead zen zen_prep groups)
  in
  List.iter (fun g -> row (H.group_name g) (H.Group_set.singleton g)) group_columns;
  row "all" H.all;
  Printf.printf "  (paper: nop..unary ~1.02x; call <=2.8x; begin/end 1.5-9.9x; load 1.8-20x;\n";
  Printf.printf "   const 2-32x; local 4-48.5x; binary 2.6-77.5x; all 49-163x;\n";
  Printf.printf "   numeric PolyBench overheads exceed the diverse real-world programs')\n"

(* ------------------------------------------------------------------ *)
(* bench overhead: the paper-style overhead report, machine-readable   *)
(* ------------------------------------------------------------------ *)

(** The three-way overhead matrix (paper, Section 6.2 / Figure 9,
    extended with the engine-probe backend) over the whole corpus,
    emitted as JSON: for every workload and every single hook group plus
    "all", the paired runtime ratio of (a) the AOT-rewritten module and
    (b) the original module under engine probes, both against the same
    uninstrumented baseline instance. The human-readable progress goes
    to stderr so stdout stays a clean JSON document (or use
    [overhead FILE]). *)
let overhead_matrix () =
  let fast = Sys.getenv_opt "WASABI_BENCH_FAST" <> None in
  let target = if fast then 0.002 else 0.006 in
  let reps = if fast then 3 else 5 in
  let entries = Lazy.force corpus_fig9 in
  let columns =
    List.map (fun g -> (H.group_name g, H.Group_set.singleton g)) group_columns
    @ [ ("all", H.all) ]
  in
  Printf.eprintf
    "bench overhead: %d workloads x %d hook groups x {aot, probe} (reps %d, target %.3fs)\n%!"
    (List.length entries) (List.length columns) reps target;
  let results =
    List.map
      (fun (e : Workloads.Corpus.entry) ->
         let m = e.module_ in
         let iters = Support.calibrated_iters m ~target in
         let base = Interp.instantiate ~imports:[] m in
         let probed = Interp.instantiate ~imports:[] m in
         let ctrl = W.Runtime.Probe.create probed W.Analysis.default in
         let cells =
           List.map
             (fun (name, groups) ->
                let res = instrument_for groups m in
                let inst, _ = W.Runtime.instantiate res W.Analysis.default in
                let aot = Support.paired_overhead ~reps ~iters base inst in
                let entry =
                  W.Runtime.Probe.attach ctrl
                    { Obs.Probe.sp_groups = (if name = "all" then [] else [ name ]);
                      sp_func = None; sp_loc = None; sp_nth = 1 }
                in
                let probe = Support.paired_overhead ~reps ~iters base probed in
                W.Runtime.Probe.detach ctrl entry;
                (name, (aot, probe)))
             columns
         in
         let all_aot, all_probe = List.assoc "all" cells in
         Printf.eprintf "  %-16s iters %4d   all aot %6.2fx  probe %6.2fx\n%!" e.name iters
           all_aot all_probe;
         (e, iters, cells))
      entries
  in
  let geomean_of pick =
    List.map
      (fun (name, _) ->
         (name,
          Support.geomean
            (List.map (fun (_, _, cells) -> pick (List.assoc name cells)) results)))
      columns
  in
  let geomeans = geomean_of fst in
  let probe_geomeans = geomean_of snd in
  Printf.eprintf "  %-16s %17s aot %6.2fx  probe %6.2fx\n%!" "geomean" ""
    (List.assoc "all" geomeans) (List.assoc "all" probe_geomeans);
  (fast, reps, target, columns, results, geomeans, probe_geomeans)

let overhead_bench out_path =
  let fast, reps, target, columns, results, geomeans, probe_geomeans = overhead_matrix () in
  let b = Buffer.create 4096 in
  let num v = if Float.is_finite v then Printf.sprintf "%.4f" v else "null" in
  let obj cells = String.concat ", " (List.map (fun (n, v) -> Printf.sprintf "\"%s\": %s" n (num v)) cells) in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"benchmark\": \"overhead\",\n";
  Buffer.add_string b "  \"matrix\": \"three-way\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"config\": {\"fast\": %b, \"reps\": %d, \"target_seconds\": %g},\n"
       fast reps target);
  Buffer.add_string b
    (Printf.sprintf "  \"hook_groups\": [%s],\n"
       (String.concat ", " (List.map (fun (n, _) -> "\"" ^ n ^ "\"") columns)));
  Buffer.add_string b "  \"backends\": [\"aot\", \"probe\"],\n";
  Buffer.add_string b "  \"workloads\": [";
  List.iteri
    (fun i ((e : Workloads.Corpus.entry), iters, cells) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Printf.sprintf
            "\n    {\"name\": \"%s\", \"kind\": \"%s\", \"iters\": %d, \"overheads\": {%s}, \"probe_overheads\": {%s}}"
            e.name
            (match e.kind with Workloads.Corpus.Polybench -> "polybench" | Workloads.Corpus.Realworld -> "realworld")
            iters
            (obj (List.map (fun (n, (a, _)) -> (n, a)) cells))
            (obj (List.map (fun (n, (_, p)) -> (n, p)) cells))))
    results;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b (Printf.sprintf "  \"geomean\": {%s},\n" (obj geomeans));
  Buffer.add_string b (Printf.sprintf "  \"probe_geomean\": {%s}\n" (obj probe_geomeans));
  Buffer.add_string b "}\n";
  match out_path with
  | None -> print_string (Buffer.contents b)
  | Some path ->
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Buffer.contents b));
    Printf.eprintf "wrote %s\n" path

(** Extract [<key>.all] from an overhead JSON document written by
    {!overhead_bench}, with a small string scan — the bench links no JSON
    library. The scan anchors on the quoted [key] object (["geomean"] or
    ["probe_geomean"]; the quotes keep the two from shadowing each
    other) so the per-workload ["all"] cells are skipped. *)
let parse_baseline_key ~key path =
  let s = In_channel.with_open_bin path In_channel.input_all in
  let find pat from =
    let n = String.length s and k = String.length pat in
    let rec go i =
      if i + k > n then None else if String.sub s i k = pat then Some (i + k) else go (i + 1)
    in
    go from
  in
  match find ("\"" ^ key ^ "\"") 0 with
  | None -> None
  | Some g ->
    (match find "\"all\":" g with
     | None -> None
     | Some start ->
       let n = String.length s in
       let stop = ref start in
       while
         !stop < n
         && (match s.[!stop] with '0' .. '9' | '.' | '-' | '+' | 'e' | ' ' -> true | _ -> false)
       do
         incr stop
       done;
       float_of_string_opt (String.trim (String.sub s start (!stop - start))))

(** CI regression gate: recompute the three-way overhead matrix and fail
    (exit 1) when the full-hook geomean slowdown of either backend — the
    AOT rewriter or the engine-probe path — regresses more than 10% over
    the committed baseline. The matrix is made of paired same-machine
    ratios, so baseline and fresh numbers are comparable across hosts.
    A pre-three-way baseline (no [probe_geomean]) gates only the AOT
    column, with a warning. *)
let overhead_check baseline_path =
  let baseline =
    match parse_baseline_key ~key:"geomean" baseline_path with
    | Some v when Float.is_finite v && v > 0.0 -> v
    | _ ->
      Printf.eprintf "overhead-check: cannot parse geomean.all from %s\n" baseline_path;
      exit 2
  in
  let probe_baseline =
    match parse_baseline_key ~key:"probe_geomean" baseline_path with
    | Some v when Float.is_finite v && v > 0.0 -> Some v
    | _ ->
      Printf.eprintf
        "overhead-check: warning — baseline has no probe_geomean; gating the AOT column only\n";
      None
  in
  let _, _, _, _, _, geomeans, probe_geomeans = overhead_matrix () in
  let failed = ref false in
  let gate label baseline fresh =
    let ratio = fresh /. baseline in
    Printf.printf "overhead-check: %-5s baseline %.2fx, current %.2fx (%+.1f%% vs baseline)\n"
      label baseline fresh ((ratio -. 1.0) *. 100.0);
    if ratio > 1.10 then begin
      Printf.eprintf "overhead-check: FAIL — %s full-hook geomean regressed more than 10%%\n"
        label;
      failed := true
    end
  in
  gate "aot" baseline (List.assoc "all" geomeans);
  (match probe_baseline with
   | Some b -> gate "probe" b (List.assoc "all" probe_geomeans)
   | None -> ());
  if !failed then exit 1 else print_endline "overhead-check: OK"

(* ------------------------------------------------------------------ *)
(* Encoder throughput                                                  *)
(* ------------------------------------------------------------------ *)

(** Encoding throughput (MB/s): every corpus module in its original and
    fully instrumented form. Tracks the effect of the section buffer
    size hints and the allocation-free local-run emission. *)
let encode_bench () =
  Support.hr "bench encode: encoder throughput (MB/s)";
  let fast = Sys.getenv_opt "WASABI_BENCH_FAST" <> None in
  let budget = if fast then 2e6 else 20e6 in
  let entries = Lazy.force corpus_fig9 in
  let tot_bytes = ref 0.0 and tot_time = ref 0.0 in
  let measure name (m : Ast.module_) =
    let size = String.length (Encode.encode m) in
    let iters = max 1 (int_of_float (budget /. float_of_int size)) in
    let t =
      Support.time_best ~reps:3 (fun () ->
        for _ = 1 to iters do
          ignore (Encode.encode m)
        done)
    in
    let bytes = float_of_int (size * iters) in
    tot_bytes := !tot_bytes +. bytes;
    tot_time := !tot_time +. t;
    Printf.printf "  %-24s %8d B x %5d %9.1f MB/s\n" name size iters
      (bytes /. Float.max 1e-9 t /. 1e6)
  in
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       measure e.name e.module_;
       measure (e.name ^ "+hooks") (W.Instrument.instrument e.module_).W.Instrument.instrumented)
    (Workloads.Corpus.realworld entries);
  List.iter
    (fun (e : Workloads.Corpus.entry) -> measure e.name e.module_)
    (Workloads.Corpus.polybench entries);
  Printf.printf "  %-24s %26.1f MB/s aggregate\n" "total"
    (!tot_bytes /. Float.max 1e-9 !tot_time /. 1e6)

(* ------------------------------------------------------------------ *)
(* Ablation: i64 splitting                                             *)
(* ------------------------------------------------------------------ *)

let i64_kernel () =
  (* an i64-heavy hashing loop *)
  let open Minic.Mc_ast in
  let open Minic.Mc_ast.Dsl in
  Minic.Mc_compile.compile
    (program
       ~globals:[ ("h", TLong, Long 0xcbf29ce484222325L) ]
       [ func "run" ~params:[] ~result:TFloat ~locals:[ ("k", TInt) ]
           [ For ("k", i 0, i 3000,
                  [ SetGlobal ("h", Binop (BXor, Global "h", Cast (TLong, v "k")));
                    SetGlobal ("h", Binop (Mul, Global "h", Long 0x100000001b3L));
                    SetGlobal ("h", Binop (BXor, Global "h",
                                           Binop (ShrU, Global "h", Long 29L))) ]);
             Return (Some (Cast (TFloat, Binop (BAnd, Global "h", Long 0xFFFFFL)))) ] ])

let ablation () =
  Support.hr "Ablation: cost of i64 splitting (Section 2.4.6)";
  let m = i64_kernel () in
  let base = Support.time_best ~reps:3 (fun () -> Support.run_uninstrumented m) in
  let groups = H.of_list [ H.G_binary; H.G_global; H.G_const ] in
  let split = W.Instrument.instrument ~groups m in
  let split_t = Support.time_best ~reps:3 (fun () -> Support.run_instrumented split) in
  let nosplit = W.Instrument.instrument ~split_i64:false ~groups m in
  let nosplit_t = Support.time_best ~reps:3 (fun () -> Support.run_instrumented nosplit) in
  let split_size = String.length (Encode.encode split.W.Instrument.instrumented) in
  let nosplit_size = String.length (Encode.encode nosplit.W.Instrument.instrumented) in
  Printf.printf "  i64-heavy kernel, hooks {binary, global, const}:\n";
  Printf.printf "    with splitting (JS-compatible):   %6.2fx overhead, %6d B\n"
    (split_t /. base) split_size;
  Printf.printf "    without splitting (native hosts): %6.2fx overhead, %6d B\n"
    (nosplit_t /. base) nosplit_size;
  Printf.printf "    splitting costs %.1f%% extra code and %.2fx extra runtime\n"
    (Support.pct (float_of_int (split_size - nosplit_size) /. float_of_int nosplit_size))
    (split_t /. nosplit_t)

(* ------------------------------------------------------------------ *)
(* Interpreter throughput microbenchmark                               *)
(* ------------------------------------------------------------------ *)

(** Instructions/second of the execution engine on the PolyBench corpus:
    the tier-0 dispatch loop, the tier-1 closure-compiled backend, and
    the fully instrumented run (empty analysis). The uninstrumented
    columns are the denominator of every RQ5-style overhead number, so
    EXPERIMENTS.md tracks them across interpreter changes. Returns the
    geomean tier-1 speedup for the [tier-check] gate. *)
let interp_bench () =
  Support.hr "bench interp: interpreter throughput on PolyBench (Minstr/s)";
  let fast = Sys.getenv_opt "WASABI_BENCH_FAST" <> None in
  let target = if fast then 0.004 else 0.05 in
  let entries = Workloads.Corpus.polybench (Lazy.force corpus_fig9) in
  Printf.printf "%-16s %10s %10s %8s %10s %9s\n" "Program" "tier0" "tier1" "speedup"
    "instr-all" "slowdown";
  let tot_steps_u = ref 0 and tot_time_u = ref 0.0 in
  let tot_steps_t = ref 0 and tot_time_t = ref 0.0 in
  let tot_steps_i = ref 0 and tot_time_i = ref 0.0 in
  let rates =
    List.map
      (fun (e : Workloads.Corpus.entry) ->
         let iters = Support.calibrated_iters e.module_ ~target in
         let base = Interp.instantiate ~imports:[] e.module_ in
         let tiered = Interp.instantiate ~imports:[] e.module_ in
         ignore (Tier1.compile_all tiered);
         let res = W.Instrument.instrument e.module_ in
         let instr, _ = W.Runtime.instantiate res W.Analysis.default in
         (* warm up, then measure *)
         ignore (Support.interp_rate base ~iters:1);
         ignore (Support.interp_rate tiered ~iters:1);
         ignore (Support.interp_rate instr ~iters:1);
         let su, tu, ru = Support.interp_rate base ~iters in
         let st, tt, rt = Support.interp_rate tiered ~iters in
         let si, ti, ri = Support.interp_rate instr ~iters in
         tot_steps_u := !tot_steps_u + su;
         tot_time_u := !tot_time_u +. tu;
         tot_steps_t := !tot_steps_t + st;
         tot_time_t := !tot_time_t +. tt;
         tot_steps_i := !tot_steps_i + si;
         tot_time_i := !tot_time_i +. ti;
         Printf.printf "%-16s %10.2f %10.2f %7.2fx %10.2f %8.2fx\n" e.name (ru /. 1e6)
           (rt /. 1e6) (rt /. ru) (ri /. 1e6)
           (ti /. float_of_int iters /. (tu /. float_of_int iters));
         (ru, rt, ri))
      entries
  in
  let agg_u = float_of_int !tot_steps_u /. Float.max 1e-9 !tot_time_u in
  let agg_t = float_of_int !tot_steps_t /. Float.max 1e-9 !tot_time_t in
  let agg_i = float_of_int !tot_steps_i /. Float.max 1e-9 !tot_time_i in
  Printf.printf "%-16s %10.2f %10.2f %7.2fx %10.2f\n" "aggregate" (agg_u /. 1e6)
    (agg_t /. 1e6) (agg_t /. agg_u) (agg_i /. 1e6);
  let geo_u = Support.geomean (List.map (fun (u, _, _) -> u) rates) in
  let geo_t = Support.geomean (List.map (fun (_, t, _) -> t) rates) in
  let geo_i = Support.geomean (List.map (fun (_, _, i) -> i) rates) in
  let speedup = geo_t /. geo_u in
  Printf.printf "%-16s %10.2f %10.2f %7.2fx %10.2f\n" "geomean" (geo_u /. 1e6) (geo_t /. 1e6)
    speedup (geo_i /. 1e6);
  Printf.printf
    "  (uninstrumented interpreted instructions/s; tier1 = closure-compiled backend;\n";
  Printf.printf
    "   instrumented runs execute the instrumented module's own instructions,\n";
  Printf.printf "   hook calls excluded)\n";
  speedup

(** CI throughput-floor gate: the tier-1 backend must deliver at least
    [min_speedup]x the tier-0 geomean on uninstrumented PolyBench, or
    the closure compiler has regressed (exit 1). *)
let tier_check min_speedup =
  let speedup = interp_bench () in
  Printf.printf "tier-check: tier-1 geomean speedup %.2fx (floor %.2fx)\n" speedup min_speedup;
  if speedup < min_speedup then begin
    Printf.eprintf "tier-check: FAIL — tier-1 speedup below the %.2fx floor\n" min_speedup;
    exit 1
  end
  else print_endline "tier-check: OK"

(* ------------------------------------------------------------------ *)
(* bench restore: snapshot/restore throughput in pages/s               *)
(* ------------------------------------------------------------------ *)

(** Measure [Snapshot.capture] and [Snapshot.restore] over instances
    with progressively larger memories (dirtied so the copies are not
    trivially zero pages), reporting pages/s per direction — the cost
    model of reusing a pooled instance instead of re-instantiating. *)
let restore_bench () =
  Support.hr "bench restore: instance snapshot/restore throughput (pages/s)";
  let fast = Sys.getenv_opt "WASABI_BENCH_FAST" <> None in
  let sizes = if fast then [ 1; 16; 64 ] else [ 1; 16; 64; 256; 1024 ] in
  let iters pages = max 8 (if fast then 2048 / pages else 16384 / pages) in
  Printf.printf "%-10s %8s %14s %14s %12s\n" "memory" "iters" "capture" "restore" "restore-ms";
  List.iter
    (fun pages ->
       let m =
         { Ast.empty_module with
           Ast.memories =
             [ { Types.mem_limits = { Types.lim_min = pages; Types.lim_max = Some pages } } ] }
       in
       let inst = Interp.instantiate ~imports:[] m in
       (match inst.Interp.inst_memory with
        | Some mem ->
          (* dirty one word per page so restore really writes *)
          for p = 0 to pages - 1 do
            Memory.store_i32 mem (Int32.of_int (p * 65536)) 0 0xDEADBEEFl
          done
        | None -> ());
       let n = iters pages in
       let t0 = Obs.Clock.now_ns () in
       let snap = ref (Snapshot.capture inst) in
       for _ = 2 to n do
         snap := Snapshot.capture inst
       done;
       let t1 = Obs.Clock.now_ns () in
       for _ = 1 to n do
         Snapshot.restore !snap inst
       done;
       let t2 = Obs.Clock.now_ns () in
       let cap_s = Obs.Clock.ns_to_s (Int64.sub t1 t0) in
       let res_s = Obs.Clock.ns_to_s (Int64.sub t2 t1) in
       let rate secs = float_of_int (pages * n) /. Float.max 1e-9 secs in
       Printf.printf "%7d pg %8d %12.2e %12.2e %12.4f\n" pages n (rate cap_s) (rate res_s)
         (res_s /. float_of_int n *. 1000.0);
       ignore (Snapshot.pages !snap))
    sizes;
  Printf.printf "  (capture = full-memory copy; restore = in-place blit + globals/table/\n";
  Printf.printf "   interpreter-state rewind; restore-ms = mean wall time per restore)\n"

(* ------------------------------------------------------------------ *)
(* bench serve: domain-parallel instance farm throughput               *)
(* ------------------------------------------------------------------ *)

(** The serving workload: gemm instrumented for the instruction-mix
    hook groups — enough event volume to exercise dispatch without
    drowning the interpreter. *)
let serve_workload () =
  let e = Workloads.Corpus.find (Lazy.force corpus_static) "gemm" in
  W.Instrument.instrument ~groups:Analyses.Instruction_mix.groups e.Workloads.Corpus.module_

(** A deliberately heavy analysis: burns cycles per hook event so that
    analysis cost is of the same order as event production cost — the
    regime where async dispatch (analysis overlapped with the next
    run's interpretation) should beat sync (analysis inline on the
    interpreter's critical path). *)
let heavy_analysis () =
  W.Analysis.reify (fun _ev ->
      let x = ref 7 in
      for _ = 1 to 200 do
        x := (!x * 31) + 1
      done;
      ignore (Sys.opaque_identity !x))

let light_analysis () =
  let st = Analyses.Instruction_mix.create () in
  Analyses.Instruction_mix.analysis st

type serve_row = {
  r_domains : int;
  r_label : string;
  r_stats : Serve.Farm.stats;
}

let serve_runs fast = if fast then 48 else 240

let serve_row ~res ~runs ~domains ~label ~mode ~make_analysis () =
  let st = Serve.Farm.run ~mode ~domains ~runs ~entry:"run" ~make_analysis res in
  Printf.printf "  %7d %-18s %6d %10.1f %9.1f %9.1f\n" domains label st.Serve.Farm.st_runs
    st.Serve.Farm.st_instances_per_sec
    (st.Serve.Farm.st_lat_p50_ns /. 1e3)
    (st.Serve.Farm.st_lat_p99_ns /. 1e3);
  { r_domains = domains; r_label = label; r_stats = st }

let serve_json path ~cores ~equal rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"cores\": %d,\n  \"stream_equal\": %b,\n  \"rows\": [\n" cores equal);
  List.iteri
    (fun i r ->
       let s = r.r_stats in
       Buffer.add_string b
         (Printf.sprintf
            "    {\"domains\": %d, \"label\": %S, \"mode\": %S, \"runs\": %d, \
             \"instances_per_sec\": %.2f, \"lat_p50_ns\": %.0f, \"lat_p99_ns\": %.0f}%s\n"
            r.r_domains r.r_label s.Serve.Farm.st_mode s.Serve.Farm.st_runs
            s.Serve.Farm.st_instances_per_sec s.Serve.Farm.st_lat_p50_ns
            s.Serve.Farm.st_lat_p99_ns
            (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "  wrote %s\n" path

(** The serving matrix: sync scaling over domain counts, then the
    sync-vs-async comparison under the heavy analysis. The async event
    stream is differentially verified against sync dispatch first —
    throughput numbers for a wrong stream would be meaningless. *)
let serve_bench json_path =
  Support.hr "bench serve: domain-parallel instance farm (gemm, instruction-mix groups)";
  let fast = Sys.getenv_opt "WASABI_BENCH_FAST" <> None in
  let res = serve_workload () in
  let cores = Domain.recommended_domain_count () in
  let equal = Serve.Farm.verify_stream_equality ~runs:2 ~entry:"run" res in
  Printf.printf "  cores available: %d\n" cores;
  Printf.printf "  async-vs-sync event stream: %s\n" (if equal then "EQUAL" else "DIVERGED");
  if not equal then exit 1;
  let runs = serve_runs fast in
  let domain_counts = if fast then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  Printf.printf "  %7s %-18s %6s %10s %9s %9s\n" "domains" "dispatch" "runs" "inst/s"
    "p50(us)" "p99(us)";
  let sync_rows =
    List.map
      (fun d ->
         serve_row ~res ~runs ~domains:d ~label:"sync(light)" ~mode:Serve.Farm.Sync
           ~make_analysis:(fun _ -> light_analysis ()) ())
      domain_counts
  in
  let heavy_pairs = if fast then [ 1 ] else [ 1; 2; 4 ] in
  let heavy_rows =
    List.concat_map
      (fun d ->
         (* bind in sequence: list literals evaluate right-to-left *)
         let s =
           serve_row ~res ~runs ~domains:d ~label:"sync(heavy)" ~mode:Serve.Farm.Sync
             ~make_analysis:(fun _ -> heavy_analysis ()) ()
         in
         let a =
           serve_row ~res ~runs ~domains:d ~label:"async(heavy)"
             ~mode:(Serve.Farm.Async { consumers = d; capacity = 256 })
             ~make_analysis:(fun _ -> heavy_analysis ()) ()
         in
         [ s; a ])
      heavy_pairs
  in
  let rows = sync_rows @ heavy_rows in
  let ips label d =
    List.find_map
      (fun r ->
         if r.r_label = label && r.r_domains = d then
           Some r.r_stats.Serve.Farm.st_instances_per_sec
         else None)
      rows
  in
  let ratio a b = match a, b with Some x, Some y when y > 0.0 -> Some (x /. y) | _ -> None in
  let hi = List.fold_left max 1 domain_counts in
  (match ratio (ips "sync(light)" hi) (ips "sync(light)" 1) with
   | Some r ->
     Printf.printf "  sync scaling %dv1: %.2fx%s\n" hi r
       (if cores < hi then Printf.sprintf " (only %d cores — scaling not expected)" cores else "")
   | None -> ());
  (match ratio (ips "async(heavy)" 1) (ips "sync(heavy)" 1) with
   | Some r ->
     Printf.printf "  async/sync under heavy analysis at 1 domain: %.2fx%s\n" r
       (if cores < 2 then " (1 core — consumer cannot overlap the worker)" else "")
   | None -> ());
  Option.iter (fun p -> serve_json p ~cores ~equal rows) json_path

(** CI gate: the farm must scale ≥ MIN_SCALING at 4 domains vs 1 —
    enforced only when the machine actually has ≥ 4 cores; on smaller
    machines the ratio is reported and the gate passes with a note
    (parallel speedup is unmeasurable there, not broken). Stream
    equality is enforced unconditionally — it holds on any core
    count. *)
let serve_check min_scaling =
  Support.hr "bench serve-check: scaling + stream-equality gate";
  let res = serve_workload () in
  let cores = Domain.recommended_domain_count () in
  if not (Serve.Farm.verify_stream_equality ~runs:2 ~entry:"run" res) then begin
    Printf.eprintf "serve-check: FAIL — async event stream differs from sync reference\n";
    exit 1
  end;
  Printf.printf "  async-vs-sync event stream: EQUAL\n";
  let fast = Sys.getenv_opt "WASABI_BENCH_FAST" <> None in
  let runs = serve_runs fast in
  let run_at d =
    (Serve.Farm.run ~mode:Serve.Farm.Sync ~domains:d ~runs ~entry:"run"
       ~make_analysis:(fun _ -> light_analysis ()) res)
      .Serve.Farm.st_instances_per_sec
  in
  let one = run_at 1 in
  let four = run_at 4 in
  let scaling = if one > 0.0 then four /. one else 0.0 in
  Printf.printf "  cores %d; instances/s at 1 domain %.1f, at 4 domains %.1f — %.2fx (floor %.2fx)\n"
    cores one four scaling min_scaling;
  if cores >= 4 && scaling < min_scaling then begin
    Printf.eprintf "serve-check: FAIL — scaling %.2fx below the %.2fx floor on a %d-core machine\n"
      scaling min_scaling cores;
    exit 1
  end;
  if cores < 4 then
    Printf.printf "  gate not enforced: %d cores < 4 (reported for the record)\n" cores
  else Printf.printf "  gate passed\n"

(* ------------------------------------------------------------------ *)
(* Static analysis smoke: call graph, lint, selective instrumentation  *)
(* ------------------------------------------------------------------ *)

(** Time the static subsystem over the whole corpus and demonstrate
    call-graph-driven selective instrumentation end to end: the lint
    must be clean everywhere, and pruning must shrink the real-world
    binaries without changing their checksum. The precision table
    compares the type-pool call graph against the abstract-
    interpretation one ([~precise]) — the precise graph must never have
    more indirect edges (exit 1 when it does) — and the size table adds
    static hook folding ([~fold]) on top of pruning. *)
let static_bench () =
  Support.hr "bench static: call graph + soundness lint over the corpus";
  let entries = Lazy.force corpus_fig9 in
  let t0 = Sys.time () in
  let cg_edges =
    List.fold_left
      (fun acc (e : Workloads.Corpus.entry) ->
         acc + List.length (Static.Callgraph.edges (Static.Callgraph.build e.module_)))
      0 entries
  in
  let cg_t = Sys.time () -. t0 in
  Printf.printf "  call graphs for %d workloads: %d edges total in %.1f ms\n"
    (List.length entries) cg_edges (cg_t *. 1000.0);
  let t0 = Sys.time () in
  let errs = ref 0 in
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let res = W.Instrument.instrument ~prune_unreachable:true e.module_ in
       errs := !errs + List.length (Lint.errors (Lint.check res)))
    entries;
  let lint_t = Sys.time () -. t0 in
  Printf.printf "  lint over every instrumented workload: %d errors in %.1f ms\n" !errs
    (lint_t *. 1000.0);
  (* precision: pool vs abstract-interpretation call graph *)
  let t0 = Sys.time () in
  Printf.printf "\n  %-16s %9s %9s %9s %9s %9s\n" "precision" "ind-pool" "ind-absint" "dead-pool"
    "dead-abs" "folded";
  let imprecise = ref 0 in
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let pool = Static.Callgraph.build e.module_ in
       let prec = Static.Callgraph.build ~precise:true e.module_ in
       let ip = List.length (Static.Callgraph.indirect_edges pool) in
       let ia = List.length (Static.Callgraph.indirect_edges prec) in
       let fold = W.Instrument.instrument ~prune_unreachable:true ~fold:true e.module_ in
       if ia > ip then incr imprecise;
       Printf.printf "  %-16s %9d %9d %9d %9d %9d%s\n" e.name ip ia
         (List.length (Static.Callgraph.dead_functions pool))
         (List.length (Static.Callgraph.dead_functions prec))
         (List.length fold.W.Instrument.metadata.W.Metadata.folded)
         (if ia > ip then "  IMPRECISE" else if ia < ip then "  (narrowed)" else ""))
    entries;
  Printf.printf "  precision pass over %d workloads in %.1f ms\n" (List.length entries)
    ((Sys.time () -. t0) *. 1000.0);
  if !imprecise > 0 then begin
    Printf.eprintf
      "bench static: FAIL — precise call graph has MORE indirect edges than the pool one on %d workloads\n"
      !imprecise;
    exit 1
  end;
  Printf.printf "\n";
  List.iter
    (fun (e : Workloads.Corpus.entry) ->
       let full = W.Instrument.instrument e.module_ in
       let sel = W.Instrument.instrument ~prune_unreachable:true e.module_ in
       let fold = W.Instrument.instrument ~prune_unreachable:true ~fold:true e.module_ in
       let fs = String.length (Encode.encode full.W.Instrument.instrumented) in
       let ss = String.length (Encode.encode sel.W.Instrument.instrumented) in
       let ds = String.length (Encode.encode fold.W.Instrument.instrumented) in
       let reference = Workloads.Corpus.run_reference e in
       let inst, _ = W.Runtime.instantiate sel W.Analysis.default in
       let result =
         match Interp.invoke_export inst "run" [] with [ Value.F64 x ] -> x | _ -> nan
       in
       let finst, _ = W.Runtime.instantiate fold W.Analysis.default in
       let fresult =
         match Interp.invoke_export finst "run" [] with [ Value.F64 x ] -> x | _ -> nan
       in
       let same x = Float.abs (reference -. x) < 1e-9 in
       Printf.printf
         "  %-12s full %6d B, selective %6d B (-%.1f%%), +fold %6d B (-%.1f%%), %d pruned, %d folded, behaviour %s\n"
         e.name fs ss
         (Support.pct (float_of_int (fs - ss) /. float_of_int fs))
         ds
         (Support.pct (float_of_int (fs - ds) /. float_of_int fs))
         (List.length sel.W.Instrument.metadata.W.Metadata.pruned_funcs)
         (List.length fold.W.Instrument.metadata.W.Metadata.folded)
         (if same result && same fresult then "identical" else "DIVERGED"))
    (Workloads.Corpus.realworld entries)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the instrumenter itself                 *)
(* ------------------------------------------------------------------ *)

let micro () =
  Support.hr "Microbenchmarks (bechamel): instrumenter phases on gemm";
  let open Bechamel in
  let open Toolkit in
  let m = (Workloads.Corpus.find (Lazy.force corpus_static) "gemm").Workloads.Corpus.module_ in
  let bin = Encode.encode m in
  let tests =
    [ Test.make ~name:"decode" (Staged.stage (fun () -> ignore (Decode.decode bin)));
      Test.make ~name:"validate" (Staged.stage (fun () -> Validate.validate_module m));
      Test.make ~name:"instrument-all"
        (Staged.stage (fun () -> ignore (W.Instrument.instrument m)));
      Test.make ~name:"instrument-call"
        (Staged.stage (fun () ->
           ignore (W.Instrument.instrument ~groups:(H.Group_set.singleton H.G_call) m)));
      Test.make ~name:"encode" (Staged.stage (fun () -> ignore (Encode.encode m))) ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false () in
  let grouped = Test.make_grouped ~name:"wasabi" ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
       match Analyze.OLS.estimates ols_result with
       | Some [ ns ] -> Printf.printf "  %-28s %10.1f us/run\n" name (ns /. 1000.0)
       | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

let all_experiments () =
  table4 ();
  rq2 ();
  table5 ();
  fig8 ();
  monomorph ();
  fig9 ();
  ablation ();
  micro ()

let () =
  match Sys.argv with
  | [| _ |] -> all_experiments ()
  | [| _; "table4" |] -> table4 ()
  | [| _; "rq2" |] -> rq2 ()
  | [| _; "table5" |] -> table5 ()
  | [| _; "fig8" |] -> fig8 ()
  | [| _; "monomorph" |] -> monomorph ()
  | [| _; "fig9" |] -> fig9 ()
  | [| _; "ablation" |] -> ablation ()
  | [| _; "micro" |] -> micro ()
  | [| _; "interp" |] -> ignore (interp_bench ())
  | [| _; "static" |] -> static_bench ()
  | [| _; "overhead" |] -> overhead_bench None
  | [| _; "overhead"; "--matrix"; "three-way" |] -> overhead_bench None
  | [| _; "overhead"; "--matrix"; "three-way"; path |] -> overhead_bench (Some path)
  | [| _; "overhead"; path |] -> overhead_bench (Some path)
  | [| _; "overhead-check"; baseline |] -> overhead_check baseline
  | [| _; "tier-check"; floor |] ->
    (match float_of_string_opt floor with
     | Some f when f > 0.0 -> tier_check f
     | _ ->
       Printf.eprintf "tier-check: MIN_SPEEDUP must be a positive number, got %S\n" floor;
       exit 2)
  | [| _; "encode" |] -> encode_bench ()
  | [| _; "restore" |] -> restore_bench ()
  | [| _; "serve" |] -> serve_bench None
  | [| _; "serve"; "--json"; path |] -> serve_bench (Some path)
  | [| _; "serve-check"; floor |] ->
    (match float_of_string_opt floor with
     | Some f when f > 0.0 -> serve_check f
     | _ ->
       Printf.eprintf "serve-check: MIN_SCALING must be a positive number, got %S\n" floor;
       exit 2)
  | _ ->
    prerr_endline
      "usage: main.exe [table4|rq2|table5|fig8|monomorph|fig9|ablation|micro|interp|static|encode|restore|serve [--json FILE]|serve-check MIN_SCALING|overhead [--matrix three-way] [FILE]|overhead-check BASELINE|tier-check MIN_SPEEDUP]";
    exit 2
